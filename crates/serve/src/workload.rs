//! Deterministic mixed read/write load generation.
//!
//! The generator produces a configurable stream of [`ClientOp`]s against a
//! live [`Server`](crate::Server): top-k and single-vertex reads plus
//! edge-churn writes chosen from the engine's current graph. Randomness
//! comes from an inlined SplitMix64 so the workload is reproducible from
//! its seed alone with no external RNG dependency; virtual time never
//! enters the generator, so the same seed drives the same op sequence on
//! every run.

use crate::request::{ClientOp, ReadKind};
use aa_core::AnytimeEngine;
use aa_graph::VertexId;
use aa_ingest::UpdateOp;

/// SplitMix64: tiny, seedable, full-period; plenty for workload shaping.
#[derive(Debug, Clone, Copy)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be positive.
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    /// Uniform draw in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Shape of the offered load.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// RNG seed; the whole op stream is a function of it.
    pub seed: u64,
    /// Requests offered per turn.
    pub offered_per_turn: usize,
    /// Fraction of offered requests that are reads (the rest are writes).
    pub read_fraction: f64,
    /// Fraction of reads that are top-k queries (the rest are
    /// single-vertex lookups).
    pub topk_read_mix: f64,
    /// `k` for top-k reads.
    pub top_k: usize,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 0x5EED_5EED,
            offered_per_turn: 32,
            read_fraction: 0.8,
            topk_read_mix: 0.7,
            top_k: 8,
        }
    }
}

/// Deterministic client-population stand-in; see the module docs.
#[derive(Debug, Clone)]
pub struct LoadGen {
    config: WorkloadConfig,
    rng: SplitMix64,
}

impl LoadGen {
    /// Builds a generator from its config.
    pub fn new(config: WorkloadConfig) -> Self {
        LoadGen {
            rng: SplitMix64(config.seed),
            config,
        }
    }

    /// The generator's config.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Produces one turn's worth of offered requests against the engine's
    /// current graph. Reads split into top-k / single-vertex per
    /// [`WorkloadConfig::topk_read_mix`]; writes are an add/delete/reweight
    /// edge-churn mix over live state.
    pub fn turn_ops(&mut self, engine: &AnytimeEngine) -> Vec<ClientOp> {
        let mut ops = Vec::with_capacity(self.config.offered_per_turn);
        for _ in 0..self.config.offered_per_turn {
            if self.rng.unit() < self.config.read_fraction {
                ops.push(ClientOp::Read(self.read(engine)));
            } else {
                ops.push(ClientOp::Write(self.write(engine)));
            }
        }
        ops
    }

    fn read(&mut self, engine: &AnytimeEngine) -> ReadKind {
        if self.rng.unit() < self.config.topk_read_mix {
            ReadKind::TopK(self.config.top_k)
        } else {
            let vertices: Vec<VertexId> = engine.graph().vertices().collect();
            if vertices.is_empty() {
                ReadKind::TopK(self.config.top_k)
            } else {
                ReadKind::Vertex(vertices[self.rng.below(vertices.len())])
            }
        }
    }

    fn write(&mut self, engine: &AnytimeEngine) -> UpdateOp {
        let vertices: Vec<VertexId> = engine.graph().vertices().collect();
        let edges: Vec<(VertexId, VertexId, aa_graph::Weight)> = engine.graph().edges().collect();
        let roll = self.rng.unit();
        if roll < 0.4 || edges.is_empty() {
            // Add an edge between two distinct live vertices (duplicates
            // become warned no-ops at the pipeline, like real traffic).
            let u = vertices[self.rng.below(vertices.len())];
            let mut v = vertices[self.rng.below(vertices.len())];
            if v == u {
                v = vertices
                    [(self.rng.below(vertices.len() - 1) + 1 + u as usize) % vertices.len()];
            }
            if v == u {
                // Single-vertex graph: emit a harmless no-op reweight probe.
                return UpdateOp::AddEdge(u, u.wrapping_add(1), 1);
            }
            UpdateOp::AddEdge(u, v, 1 + self.rng.below(4) as aa_graph::Weight)
        } else if roll < 0.75 {
            let (u, v, _) = edges[self.rng.below(edges.len())];
            UpdateOp::DeleteEdge(u, v)
        } else {
            let (u, v, w) = edges[self.rng.below(edges.len())];
            let new_w = if w > 1 && self.rng.unit() < 0.5 {
                w - 1
            } else {
                w + 1 + self.rng.below(3) as aa_graph::Weight
            };
            UpdateOp::Reweight(u, v, new_w)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aa_core::EngineConfig;
    use aa_graph::generators;

    fn engine() -> AnytimeEngine {
        let g = generators::barabasi_albert(50, 2, 1, 7);
        let mut e = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: 3,
                ..Default::default()
            },
        );
        e.initialize();
        e
    }

    #[test]
    fn same_seed_same_stream() {
        let e = engine();
        let cfg = WorkloadConfig::default();
        let a: Vec<ClientOp> = LoadGen::new(cfg).turn_ops(&e);
        let b: Vec<ClientOp> = LoadGen::new(cfg).turn_ops(&e);
        assert_eq!(a, b);
        assert_eq!(a.len(), cfg.offered_per_turn);
    }

    #[test]
    fn read_fraction_shapes_the_mix() {
        let e = engine();
        let mut gen = LoadGen::new(WorkloadConfig {
            offered_per_turn: 400,
            read_fraction: 0.9,
            ..Default::default()
        });
        let ops = gen.turn_ops(&e);
        let reads = ops
            .iter()
            .filter(|o| matches!(o, ClientOp::Read(_)))
            .count();
        assert!(reads > 320, "~90% reads expected, got {reads}/400");
        let writes = ops.len() - reads;
        assert!(writes > 10, "some writes expected, got {writes}");
    }

    #[test]
    fn topk_read_mix_shapes_the_read_split() {
        let e = engine();
        let mut all_topk = LoadGen::new(WorkloadConfig {
            offered_per_turn: 200,
            read_fraction: 1.0,
            topk_read_mix: 1.0,
            ..Default::default()
        });
        assert!(all_topk
            .turn_ops(&e)
            .iter()
            .all(|o| matches!(o, ClientOp::Read(ReadKind::TopK(_)))));
        let mut no_topk = LoadGen::new(WorkloadConfig {
            offered_per_turn: 200,
            read_fraction: 1.0,
            topk_read_mix: 0.0,
            ..Default::default()
        });
        assert!(no_topk
            .turn_ops(&e)
            .iter()
            .all(|o| matches!(o, ClientOp::Read(ReadKind::Vertex(_)))));
    }

    #[test]
    fn writes_reference_live_state() {
        let e = engine();
        let mut gen = LoadGen::new(WorkloadConfig {
            offered_per_turn: 200,
            read_fraction: 0.0,
            ..Default::default()
        });
        for op in gen.turn_ops(&e) {
            if let ClientOp::Write(w) = op {
                match w {
                    UpdateOp::AddEdge(u, v, wt) => {
                        assert!(e.graph().is_alive(u));
                        assert!(e.graph().is_alive(v));
                        assert_ne!(u, v);
                        assert!(wt >= 1);
                    }
                    UpdateOp::DeleteEdge(u, v) | UpdateOp::Reweight(u, v, _) => {
                        assert!(e.graph().edge_weight(u, v).is_some());
                    }
                    other => panic!("unexpected op {other:?}"),
                }
            }
        }
    }
}
