//! Adaptive (stability-aware) repartitioning — the ParMETIS adaptive-
//! repartition substitute.
//!
//! The papers' Repartition-S strategy repartitions the grown graph and then
//! migrates the partial results of every relocated vertex; the repartitioner
//! they reuse (ParMETIS) minimizes *migration* as well as cut when invoked
//! adaptively. [`AdaptiveRefine`] reproduces that contract: it starts from
//! the current assignment, places unassigned (new) vertices by neighbour
//! affinity under the balance constraint, and then runs bounded FM boundary
//! refinement. Vertices move only when the refinement finds a cut gain, so
//! migration volume stays proportional to how much the graph actually
//! changed.

use crate::multilevel::{build_base, contract, refine_pass};
use crate::partition::Partition;
use aa_graph::{Graph, VertexId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// ParMETIS-style adaptive multilevel repartitioning: coarsen the grown
/// graph with heavy-edge matching, **project the current partition** onto the
/// coarsest level (weighted majority per coarse vertex), then refine on the
/// way back up. Produces multilevel-quality cuts while moving only the
/// vertices the refinement actually wants to move — the scheme ParMETIS uses
/// when invoked for repartitioning, which the papers' Repartition-S relies
/// on.
#[derive(Debug, Clone)]
pub struct AdaptiveMultilevel {
    /// Allowed imbalance ε.
    pub epsilon: f64,
    /// Coarsening stops at `max(coarse_factor · k, 200)` vertices.
    pub coarse_factor: usize,
    /// FM refinement passes per level.
    pub refine_passes: usize,
    /// Seed for the randomized matching order.
    pub seed: u64,
}

impl Default for AdaptiveMultilevel {
    fn default() -> Self {
        AdaptiveMultilevel {
            epsilon: 0.10,
            coarse_factor: 30,
            refine_passes: 4,
            seed: 0xADA9,
        }
    }
}

impl AdaptiveMultilevel {
    /// Repartitions `g` into `k` parts starting from `current`.
    pub fn repartition(&self, g: &Graph, current: &Partition, k: usize) -> Partition {
        assert!(k >= 1);
        let mut out = Partition::unassigned(g.capacity(), k);
        let n = g.vertex_count();
        if n == 0 {
            return out;
        }
        let max_weight = ((n as f64 / k as f64) * (1.0 + self.epsilon))
            .ceil()
            .max(1.0) as u64;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let (base, orig_of) = build_base(g);

        // Seed assignment at the finest level from `current`; unassigned
        // (new) vertices inherit by neighbour affinity during projection —
        // here they start unlabelled and are fixed after coarsening.
        let mut fine_part: Vec<usize> = orig_of
            .iter()
            .map(|&v| current.part_of(v).filter(|&p| p < k).unwrap_or(usize::MAX))
            .collect();

        // Coarsen with *label-constrained* heavy-edge matching (only
        // same-label or unlabelled vertices merge, as ParMETIS does when
        // repartitioning), so the current partition projects exactly onto
        // every level of the hierarchy.
        let stop_at = (self.coarse_factor * k).max(200);
        let mut levels = vec![base];
        let mut part = fine_part.clone();
        // aa-lint: allow(AA01, levels starts with one element and only grows — last() cannot be empty)
        while levels.last().unwrap().n() > stop_at {
            // aa-lint: allow(AA01, same non-empty invariant as the loop condition)
            let last = levels.last().unwrap();
            let matched = labeled_matching(last, &part, &mut rng);
            let next = contract(last, &matched);
            // Integer form of `next.n() > 0.95 * last.n()`: coarsening stalls
            // when a pass shrinks the level by less than 5% (float-free so the
            // stop decision is exact and replayable).
            if next.n() * 20 > last.n() * 19 {
                break;
            }
            // Project labels exactly (label-pure coarse vertices).
            let mut coarse_part = vec![usize::MAX; next.n()];
            for (fine_v, &lbl) in part.iter().enumerate() {
                let c = next.coarse_of[fine_v] as usize;
                if lbl != usize::MAX {
                    debug_assert!(coarse_part[c] == usize::MAX || coarse_part[c] == lbl);
                    coarse_part[c] = lbl;
                }
            }
            part = coarse_part;
            levels.push(next);
        }

        // Fix unlabelled coarse vertices (all-new regions): lightest part.
        {
            // aa-lint: allow(AA01, levels is never emptied after its seeded first element)
            let coarsest = levels.last().unwrap();
            let mut weight = vec![0u64; k];
            for (v, &lbl) in part.iter().enumerate() {
                if lbl != usize::MAX {
                    weight[lbl] += coarsest.vw[v];
                }
            }
            for (v, lbl) in part.iter_mut().enumerate() {
                if *lbl == usize::MAX {
                    // k >= 1 is asserted at entry; the fallback is unreachable.
                    let p = (0..k).min_by_key(|&p| weight[p]).unwrap_or(0);
                    *lbl = p;
                    weight[p] += coarsest.vw[v];
                }
            }
        }

        // Repair any imbalance (growth may have landed unevenly), then refine
        // on the way back up.
        // aa-lint: allow(AA01, levels is never emptied after its seeded first element)
        balance_pass(levels.last().unwrap(), &mut part, k, max_weight);
        for _ in 0..self.refine_passes {
            // aa-lint: allow(AA01, levels is never emptied after its seeded first element)
            if !refine_pass(levels.last().unwrap(), &mut part, k, max_weight) {
                break;
            }
        }
        for li in (1..levels.len()).rev() {
            let fine = &levels[li - 1];
            let coarse_of = &levels[li].coarse_of;
            let mut projected = vec![0usize; fine.n()];
            for v in 0..fine.n() {
                projected[v] = part[coarse_of[v] as usize];
            }
            balance_pass(fine, &mut projected, k, max_weight);
            for _ in 0..self.refine_passes {
                if !refine_pass(fine, &mut projected, k, max_weight) {
                    break;
                }
            }
            part = projected;
        }
        fine_part.copy_from_slice(&part);

        for (d, &v) in orig_of.iter().enumerate() {
            out.assign(v, fine_part[d]);
        }
        out
    }
}

/// Heavy-edge matching restricted to same-label (or unlabelled) pairs, so
/// coarse vertices never mix partitions.
fn labeled_matching(
    level: &crate::multilevel::Level,
    part: &[usize],
    rng: &mut ChaCha8Rng,
) -> Vec<u32> {
    use rand::seq::SliceRandom;
    let n = level.n();
    let mut matched = vec![u32::MAX; n];
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    for &v in &order {
        if matched[v as usize] != u32::MAX {
            continue;
        }
        let lv = part[v as usize];
        let mut best: Option<(u32, u64)> = None;
        for &(u, w) in &level.adj[v as usize] {
            if u == v || matched[u as usize] != u32::MAX {
                continue;
            }
            let lu = part[u as usize];
            if lv != usize::MAX && lu != usize::MAX && lv != lu {
                continue; // would mix labels
            }
            if best.is_none_or(|(_, bw)| w > bw) {
                best = Some((u, w));
            }
        }
        match best {
            Some((u, _)) => {
                matched[v as usize] = u;
                matched[u as usize] = v;
            }
            None => matched[v as usize] = v,
        }
    }
    matched
}

/// Moves vertices out of overweight parts (highest external connectivity
/// first, crude greedy) until every part fits `max_weight` or no legal move
/// remains.
fn balance_pass(level: &crate::multilevel::Level, part: &mut [usize], k: usize, max_weight: u64) {
    let n = level.n();
    let mut weight = vec![0u64; k];
    for v in 0..n {
        weight[part[v]] += level.vw[v];
    }
    let mut progress = true;
    while progress && weight.iter().any(|&w| w > max_weight) {
        progress = false;
        for v in 0..n {
            let cur = part[v];
            if weight[cur] <= max_weight {
                continue;
            }
            // Best destination: most connectivity, must have room.
            let mut conn = vec![0u64; k];
            for &(u, w) in &level.adj[v] {
                conn[part[u as usize]] += w;
            }
            let dest = (0..k)
                .filter(|&p| p != cur && weight[p] + level.vw[v] <= max_weight)
                .max_by_key(|&p| (conn[p], std::cmp::Reverse(weight[p])));
            if let Some(p) = dest {
                weight[cur] -= level.vw[v];
                weight[p] += level.vw[v];
                part[v] = p;
                progress = true;
            }
        }
    }
}

/// Permutes the part labels of `new` to maximize agreement with `old`
/// (greedy maximum-overlap matching). Fresh repartitioning runs produce
/// structurally similar partitions under arbitrary label permutations; the
/// remap keeps migration counts meaningful — only *structural* moves remain.
pub fn remap_labels(old: &Partition, new: &Partition) -> Partition {
    assert_eq!(old.num_parts, new.num_parts, "part counts must match");
    let k = new.num_parts;
    let mut overlap = vec![0usize; k * k]; // [new_label][old_label]
    for (v, &np) in new.assignment.iter().enumerate() {
        if np == crate::partition::UNASSIGNED {
            continue;
        }
        if let Some(op) = old.part_of(v as VertexId) {
            overlap[np * k + op] += 1;
        }
    }
    let mut pairs: Vec<(usize, usize, usize)> = (0..k)
        .flat_map(|np| (0..k).map(move |op| (np, op, 0)))
        .map(|(np, op, _)| (np, op, overlap[np * k + op]))
        .collect();
    pairs.sort_by_key(|&(np, op, ov)| (std::cmp::Reverse(ov), np, op));
    let mut label_map = vec![usize::MAX; k];
    let mut used = vec![false; k];
    for (np, op, _) in pairs {
        if label_map[np] == usize::MAX && !used[op] {
            label_map[np] = op;
            used[op] = true;
        }
    }
    // Any leftover labels (k small corner cases) take the free slots.
    for slot in label_map.iter_mut() {
        if *slot == usize::MAX {
            // One free slot per unmapped label by counting; 0 is unreachable.
            let op = used.iter().position(|&u| !u).unwrap_or(0);
            *slot = op;
            used[op] = true;
        }
    }
    let mut out = Partition::unassigned(new.assignment.len(), k);
    for (v, &np) in new.assignment.iter().enumerate() {
        if np != crate::partition::UNASSIGNED {
            out.assignment[v] = label_map[np];
        }
    }
    out
}

/// Stability-aware repartitioner: refine an existing assignment instead of
/// partitioning from scratch.
#[derive(Debug, Clone)]
pub struct AdaptiveRefine {
    /// Allowed imbalance ε: part weight may reach `(1+ε)·total/k`.
    pub epsilon: f64,
    /// FM refinement passes.
    pub refine_passes: usize,
}

impl Default for AdaptiveRefine {
    fn default() -> Self {
        AdaptiveRefine {
            epsilon: 0.10,
            refine_passes: 2,
        }
    }
}

impl AdaptiveRefine {
    /// Produces a new `k`-way partition of `g`, starting from `current`.
    /// Vertices with no assignment in `current` (e.g. newly added) are placed
    /// first; existing assignments are preserved except where refinement
    /// finds a cut improvement within the balance bound.
    pub fn repartition(&self, g: &Graph, current: &Partition, k: usize) -> Partition {
        assert!(k >= 1);
        let mut out = Partition::unassigned(g.capacity(), k);
        let n = g.vertex_count();
        if n == 0 {
            return out;
        }
        let total = n as u64;
        let max_weight = ((total as f64 / k as f64) * (1.0 + self.epsilon))
            .ceil()
            .max(1.0) as u64;

        let (base, orig_of) = build_base(g);
        let dense_of = {
            let mut m = vec![u32::MAX; g.capacity()];
            for (d, &v) in orig_of.iter().enumerate() {
                m[v as usize] = d as u32;
            }
            m
        };

        // Start from the current assignment.
        let mut part = vec![usize::MAX; orig_of.len()];
        let mut weight = vec![0u64; k];
        for (d, &v) in orig_of.iter().enumerate() {
            if let Some(p) = current.part_of(v) {
                if p < k {
                    part[d] = p;
                    weight[p] += 1;
                }
            }
        }

        // Place unassigned vertices by neighbour affinity, respecting the
        // balance bound; isolated or over-budget vertices go to the lightest
        // part.
        for d in 0..part.len() {
            if part[d] != usize::MAX {
                continue;
            }
            let mut affinity = vec![0u64; k];
            for &(u, w) in &base.adj[d] {
                if part[u as usize] != usize::MAX {
                    affinity[part[u as usize]] += w;
                }
            }
            let choice = (0..k)
                .filter(|&p| weight[p] < max_weight)
                .max_by_key(|&p| (affinity[p], std::cmp::Reverse(weight[p])))
                .unwrap_or_else(|| (0..k).min_by_key(|&p| weight[p]).unwrap_or(0));
            part[d] = choice;
            weight[choice] += 1;
        }

        for _ in 0..self.refine_passes {
            if !refine_pass(&base, &mut part, k, max_weight) {
                break;
            }
        }

        for (d, &v) in orig_of.iter().enumerate() {
            debug_assert!(dense_of[v as usize] as usize == d);
            out.assign(v, part[d]);
        }
        out
    }

    /// Number of vertices whose assignment differs between two partitions
    /// (the migration volume Repartition-S will pay).
    pub fn migration_count(old: &Partition, new: &Partition) -> usize {
        let slots = old.assignment.len().max(new.assignment.len());
        (0..slots as VertexId)
            .filter(|&v| {
                let a = old.part_of(v);
                let b = new.part_of(v);
                a.is_some() && b.is_some() && a != b
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::{balance, edge_cut};
    use crate::{MultilevelKWay, Partitioner};
    use aa_graph::generators;

    #[test]
    fn preserves_assignment_when_nothing_changed() {
        let g = generators::planted_partition(4, 30, 0.4, 0.01, 1, 3);
        let current = MultilevelKWay::default().partition(&g, 4);
        let new = AdaptiveRefine::default().repartition(&g, &current, 4);
        new.validate(&g).unwrap();
        let moved = AdaptiveRefine::migration_count(&current, &new);
        assert!(
            moved <= g.vertex_count() / 10,
            "a good partition should barely move: {moved} migrations"
        );
    }

    #[test]
    fn places_new_vertices_by_affinity() {
        let mut g = generators::planted_partition(2, 20, 0.5, 0.02, 1, 5);
        let current = MultilevelKWay::default().partition(&g, 2);
        // New vertex strongly tied to community 0 (vertices 0..20).
        let v = g.add_vertex();
        for u in 0..5u32 {
            g.add_edge(v, u, 1);
        }
        let new = AdaptiveRefine::default().repartition(&g, &current, 2);
        new.validate(&g).unwrap();
        assert_eq!(
            new.part_of(v),
            new.part_of(0),
            "new vertex must join its neighbours' part"
        );
    }

    #[test]
    fn repairs_badly_skewed_input() {
        let g = generators::barabasi_albert(120, 2, 1, 7);
        // Everything in part 0: the refinement cannot fix balance (FM only
        // moves boundary vertices toward gain), but new placements respect
        // the bound and validation still holds.
        let mut current = Partition::unassigned(g.capacity(), 3);
        for v in g.vertices() {
            current.assign(v, 0);
        }
        let new = AdaptiveRefine::default().repartition(&g, &current, 3);
        new.validate(&g).unwrap();
    }

    #[test]
    fn handles_unassigned_start() {
        let g = generators::barabasi_albert(100, 2, 1, 9);
        let empty = Partition::unassigned(g.capacity(), 4);
        let new = AdaptiveRefine::default().repartition(&g, &empty, 4);
        new.validate(&g).unwrap();
        assert!(balance(&new) <= 1.15, "balance {}", balance(&new));
    }

    #[test]
    fn refinement_does_not_worsen_cut() {
        let g = generators::planted_partition(4, 25, 0.4, 0.02, 1, 11);
        let current = MultilevelKWay::default().partition(&g, 4);
        let before = edge_cut(&g, &current);
        let new = AdaptiveRefine::default().repartition(&g, &current, 4);
        let after = edge_cut(&g, &new);
        assert!(after <= before, "cut got worse: {before} -> {after}");
    }

    #[test]
    fn remap_labels_undoes_a_permutation() {
        let g = generators::planted_partition(3, 10, 0.6, 0.01, 1, 2);
        let p = MultilevelKWay::default().partition(&g, 3);
        // Permute labels 0->1->2->0.
        let mut permuted = p.clone();
        for a in permuted.assignment.iter_mut() {
            if *a != usize::MAX {
                *a = (*a + 1) % 3;
            }
        }
        let remapped = remap_labels(&p, &permuted);
        assert_eq!(remapped.assignment, p.assignment);
        assert_eq!(AdaptiveRefine::migration_count(&p, &remapped), 0);
    }

    #[test]
    fn remap_labels_reduces_migration_for_fresh_partitions() {
        let g = generators::planted_partition(4, 25, 0.4, 0.01, 1, 21);
        let a = MultilevelKWay {
            seed: 1,
            ..Default::default()
        }
        .partition(&g, 4);
        let b = MultilevelKWay {
            seed: 2,
            ..Default::default()
        }
        .partition(&g, 4);
        let raw = AdaptiveRefine::migration_count(&a, &b);
        let remapped = remap_labels(&a, &b);
        let after = AdaptiveRefine::migration_count(&a, &remapped);
        assert!(
            after <= raw,
            "remap must not increase migration: {raw} -> {after}"
        );
        assert!(
            after < g.vertex_count() / 2,
            "structurally similar partitions should mostly agree after remap: {after}"
        );
        assert_eq!(
            edge_cut(&g, &b),
            edge_cut(&g, &remapped),
            "cut unchanged by relabel"
        );
    }

    #[test]
    fn adaptive_multilevel_valid_and_stable() {
        let g = generators::barabasi_albert(600, 2, 1, 13);
        let current = MultilevelKWay::default().partition(&g, 8);
        let new = AdaptiveMultilevel::default().repartition(&g, &current, 8);
        new.validate(&g).unwrap();
        assert!(balance(&new) <= 1.20, "balance {}", balance(&new));
        let moved = AdaptiveRefine::migration_count(&current, &new);
        assert!(
            moved < g.vertex_count() / 3,
            "adaptive multilevel must be far more stable than a fresh run: moved {moved}"
        );
    }

    #[test]
    fn adaptive_multilevel_absorbs_growth() {
        let mut g = generators::barabasi_albert(300, 2, 1, 15);
        let current = MultilevelKWay::default().partition(&g, 4);
        // Grow by 10%: a clique attached to vertex 0.
        let base = g.capacity() as u32;
        for _ in 0..30 {
            g.add_vertex();
        }
        for i in 0..30u32 {
            g.add_edge(base + i, if i == 0 { 0 } else { base + i - 1 }, 1);
        }
        let new = AdaptiveMultilevel::default().repartition(&g, &current, 4);
        new.validate(&g).unwrap();
        assert!(balance(&new) <= 1.25, "balance {}", balance(&new));
    }

    #[test]
    fn adaptive_multilevel_from_empty_assignment() {
        let g = generators::planted_partition(4, 30, 0.4, 0.01, 1, 17);
        let empty = Partition::unassigned(g.capacity(), 4);
        let new = AdaptiveMultilevel::default().repartition(&g, &empty, 4);
        new.validate(&g).unwrap();
    }

    #[test]
    fn migration_count_counts_moves_only() {
        let mut a = Partition::unassigned(4, 2);
        let mut b = Partition::unassigned(4, 2);
        a.assign(0, 0);
        a.assign(1, 1);
        b.assign(0, 1); // moved
        b.assign(1, 1); // stayed
        b.assign(2, 0); // new in b: not a migration
        assert_eq!(AdaptiveRefine::migration_count(&a, &b), 1);
    }
}
