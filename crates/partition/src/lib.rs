#![forbid(unsafe_code)]
//! Graph partitioning substrate — the reproduction's METIS/ParMETIS substitute.
//!
//! The anytime-anywhere papers use ParMETIS for domain decomposition, METIS
//! inside the CutEdge-PS processor-assignment strategy, and state that "any
//! cut-edge optimization based graph partitioning algorithm can be used". This
//! crate provides that contract from scratch:
//!
//! * [`MultilevelKWay`] — the workhorse: heavy-edge-matching coarsening, greedy
//!   graph-growing initial partition, Fiduccia–Mattheyses-style boundary
//!   refinement during uncoarsening, with an explicit balance constraint;
//! * [`RoundRobinPartitioner`], [`HashPartitioner`], [`BfsGrowPartitioner`] —
//!   cheap baselines used in ablations;
//! * [`quality`] — edge-cut, per-part cut size, balance factor, and the
//!   "new cut edges introduced by a batch" metric plotted in the paper's
//!   Figure 7.

pub mod adaptive;
pub mod multilevel;
pub mod partition;
pub mod partitioners;
pub mod quality;

pub use adaptive::{AdaptiveMultilevel, AdaptiveRefine};
pub use multilevel::MultilevelKWay;
pub use partition::Partition;
pub use partitioners::{BfsGrowPartitioner, HashPartitioner, Partitioner, RoundRobinPartitioner};
