//! The [`Partition`] type: a vertex → part assignment with validation helpers.

use aa_graph::{Graph, VertexId};

/// Marker for unassigned / tombstoned vertex slots.
pub const UNASSIGNED: usize = usize::MAX;

/// A k-way partition of a graph's live vertices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Part of each vertex id slot; [`UNASSIGNED`] for tombstones.
    pub assignment: Vec<usize>,
    /// Number of parts `k`.
    pub num_parts: usize,
}

impl Partition {
    /// Creates a partition with every slot unassigned.
    pub fn unassigned(slots: usize, num_parts: usize) -> Self {
        Partition {
            assignment: vec![UNASSIGNED; slots],
            num_parts,
        }
    }

    /// Part of vertex `v`, if assigned.
    pub fn part_of(&self, v: VertexId) -> Option<usize> {
        match self.assignment.get(v as usize) {
            Some(&p) if p != UNASSIGNED => Some(p),
            _ => None,
        }
    }

    /// Assigns vertex `v` to `part`, growing the slot table if needed.
    pub fn assign(&mut self, v: VertexId, part: usize) {
        assert!(part < self.num_parts, "part {part} out of range");
        if self.assignment.len() <= v as usize {
            self.assignment.resize(v as usize + 1, UNASSIGNED);
        }
        self.assignment[v as usize] = part;
    }

    /// Vertex lists per part.
    pub fn members(&self) -> Vec<Vec<VertexId>> {
        let mut out = vec![Vec::new(); self.num_parts];
        for (v, &p) in self.assignment.iter().enumerate() {
            if p != UNASSIGNED {
                out[p].push(v as VertexId);
            }
        }
        out
    }

    /// Number of vertices in each part.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_parts];
        for &p in &self.assignment {
            if p != UNASSIGNED {
                sizes[p] += 1;
            }
        }
        sizes
    }

    /// Checks that exactly the live vertices of `g` are assigned, to valid
    /// parts. Used by tests and property checks.
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        if self.assignment.len() < g.capacity() {
            return Err(format!(
                "partition covers {} slots, graph has {}",
                self.assignment.len(),
                g.capacity()
            ));
        }
        for v in 0..g.capacity() as VertexId {
            let p = self.assignment[v as usize];
            if g.is_alive(v) {
                if p == UNASSIGNED {
                    return Err(format!("live vertex {v} unassigned"));
                }
                if p >= self.num_parts {
                    return Err(format!("vertex {v} assigned to invalid part {p}"));
                }
            } else if p != UNASSIGNED {
                return Err(format!("tombstone {v} has an assignment"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aa_graph::generators;

    #[test]
    fn assign_and_query() {
        let mut p = Partition::unassigned(3, 2);
        p.assign(1, 1);
        assert_eq!(p.part_of(1), Some(1));
        assert_eq!(p.part_of(0), None);
        assert_eq!(p.part_of(99), None);
        assert_eq!(p.part_sizes(), vec![0, 1]);
    }

    #[test]
    fn assign_grows_slots() {
        let mut p = Partition::unassigned(0, 3);
        p.assign(5, 2);
        assert_eq!(p.assignment.len(), 6);
        assert_eq!(p.members()[2], vec![5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn assign_rejects_bad_part() {
        let mut p = Partition::unassigned(1, 2);
        p.assign(0, 2);
    }

    #[test]
    fn validate_catches_unassigned_live_vertex() {
        let g = generators::path(3);
        let mut p = Partition::unassigned(3, 2);
        p.assign(0, 0);
        p.assign(1, 1);
        assert!(p.validate(&g).unwrap_err().contains("unassigned"));
        p.assign(2, 0);
        p.validate(&g).unwrap();
    }

    #[test]
    fn validate_catches_assigned_tombstone() {
        let mut g = generators::path(3);
        g.remove_vertex(1);
        let mut p = Partition::unassigned(3, 2);
        p.assign(0, 0);
        p.assign(1, 0);
        p.assign(2, 1);
        assert!(p.validate(&g).unwrap_err().contains("tombstone"));
    }
}
