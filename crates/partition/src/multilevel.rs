//! Multilevel k-way partitioner — the METIS substitute.
//!
//! Classic three-stage multilevel scheme (Karypis & Kumar):
//!
//! 1. **Coarsening**: repeated heavy-edge matching contracts the graph until
//!    it is small (`≈ max(30·k, 200)` vertices). Contracted vertices carry the
//!    number of original vertices they represent so balance is tracked in
//!    original-vertex units.
//! 2. **Initial partition**: greedy graph growing on the coarsest graph —
//!    parts are grown one at a time from high-connectivity frontiers until
//!    they reach the target weight.
//! 3. **Uncoarsening + refinement**: the assignment is projected back level by
//!    level; at every level a bounded Fiduccia–Mattheyses-style pass moves
//!    boundary vertices to the neighbouring part with the best cut gain,
//!    subject to the balance constraint `weight(part) ≤ (1+ε)·total/k`.

use crate::partition::Partition;
use crate::partitioners::Partitioner;
use aa_graph::{Graph, VertexId};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Multilevel k-way partitioner with a balance constraint.
///
/// ```
/// use aa_partition::{MultilevelKWay, Partitioner, quality};
/// use aa_graph::generators;
///
/// let g = generators::planted_partition(4, 25, 0.4, 0.01, 1, 7);
/// let part = MultilevelKWay::default().partition(&g, 4);
/// part.validate(&g).unwrap();
/// assert!(quality::balance(&part) <= 1.15);
/// ```
#[derive(Debug, Clone)]
pub struct MultilevelKWay {
    /// Allowed imbalance ε: part weight may reach `(1+ε)·total/k`.
    pub epsilon: f64,
    /// Coarsening stops once the graph has at most `max(coarse_factor · k,
    /// 200)` vertices.
    pub coarse_factor: usize,
    /// FM refinement passes per level.
    pub refine_passes: usize,
    /// Seed for the randomized matching order.
    pub seed: u64,
}

impl Default for MultilevelKWay {
    fn default() -> Self {
        MultilevelKWay {
            epsilon: 0.10,
            coarse_factor: 30,
            refine_passes: 4,
            seed: 0x5EED,
        }
    }
}

/// One level of the coarsening hierarchy: a weighted graph in dense indexing
/// plus the mapping from the finer level's vertices to this level's.
pub(crate) struct Level {
    pub(crate) adj: Vec<Vec<(u32, u64)>>, // neighbor -> combined edge weight
    pub(crate) vw: Vec<u64>,              // vertex weights (original-vertex counts)
    /// For each vertex of the *finer* level, its coarse vertex here.
    pub(crate) coarse_of: Vec<u32>,
}

impl Level {
    pub(crate) fn n(&self) -> usize {
        self.adj.len()
    }
}

/// Builds level 0 (dense re-indexing of the live vertices of `g`).
/// Returns the level plus `orig_of` (dense index -> original vertex id).
pub(crate) fn build_base(g: &Graph) -> (Level, Vec<VertexId>) {
    let mut dense = vec![u32::MAX; g.capacity()];
    let mut orig_of = Vec::with_capacity(g.vertex_count());
    for v in g.vertices() {
        dense[v as usize] = orig_of.len() as u32;
        orig_of.push(v);
    }
    let mut adj = vec![Vec::new(); orig_of.len()];
    for (u, v, w) in g.edges() {
        let (du, dv) = (dense[u as usize], dense[v as usize]);
        adj[du as usize].push((dv, w as u64));
        adj[dv as usize].push((du, w as u64));
    }
    let n = orig_of.len();
    (
        Level {
            adj,
            vw: vec![1; n],
            coarse_of: Vec::new(),
        },
        orig_of,
    )
}

/// Heavy-edge matching: visit vertices in random order; match each unmatched
/// vertex with its unmatched neighbour of maximum edge weight (ties broken by
/// smaller vertex weight to keep coarse vertices balanced).
pub(crate) fn heavy_edge_matching(level: &Level, rng: &mut ChaCha8Rng) -> Vec<u32> {
    let n = level.n();
    let mut matched = vec![u32::MAX; n];
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    for &v in &order {
        if matched[v as usize] != u32::MAX {
            continue;
        }
        let mut best: Option<(u32, u64)> = None;
        for &(u, w) in &level.adj[v as usize] {
            if u == v || matched[u as usize] != u32::MAX {
                continue;
            }
            let better = match best {
                None => true,
                Some((bu, bw)) => {
                    w > bw || (w == bw && level.vw[u as usize] < level.vw[bu as usize])
                }
            };
            if better {
                best = Some((u, w));
            }
        }
        match best {
            Some((u, _)) => {
                matched[v as usize] = u;
                matched[u as usize] = v;
            }
            None => matched[v as usize] = v, // self-match
        }
    }
    matched
}

/// Contracts matched pairs into a coarser level.
pub(crate) fn contract(level: &Level, matched: &[u32]) -> Level {
    let n = level.n();
    let mut coarse_of = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        if coarse_of[v as usize] != u32::MAX {
            continue;
        }
        let m = matched[v as usize];
        coarse_of[v as usize] = next;
        if m != v {
            coarse_of[m as usize] = next;
        }
        next += 1;
    }
    let cn = next as usize;
    let mut vw = vec![0u64; cn];
    for v in 0..n {
        vw[coarse_of[v] as usize] += level.vw[v];
    }
    // Accumulate combined edge weights via a per-vertex scatter map.
    let mut adj: Vec<Vec<(u32, u64)>> = vec![Vec::new(); cn];
    let mut scratch: Vec<u64> = vec![0; cn];
    let mut touched: Vec<u32> = Vec::new();
    let mut fine_of = vec![Vec::new(); cn];
    for v in 0..n as u32 {
        fine_of[coarse_of[v as usize] as usize].push(v);
    }
    for c in 0..cn as u32 {
        touched.clear();
        for &v in &fine_of[c as usize] {
            for &(u, w) in &level.adj[v as usize] {
                let cu = coarse_of[u as usize];
                if cu == c {
                    continue; // contracted edge disappears
                }
                if scratch[cu as usize] == 0 {
                    touched.push(cu);
                }
                scratch[cu as usize] += w;
            }
        }
        for &cu in &touched {
            adj[c as usize].push((cu, scratch[cu as usize]));
            scratch[cu as usize] = 0;
        }
    }
    Level { adj, vw, coarse_of }
}

/// Greedy graph growing initial partition of the coarsest level.
fn initial_partition(level: &Level, k: usize, max_weight: u64, rng: &mut ChaCha8Rng) -> Vec<usize> {
    let n = level.n();
    let total: u64 = level.vw.iter().sum();
    let target = total.div_ceil(k as u64);
    let mut part = vec![usize::MAX; n];
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    let mut oi = 0usize;

    for p in 0..k {
        let mut weight = 0u64;
        // Frontier scored by connectivity to the growing part.
        let mut gain: Vec<i64> = vec![0; n];
        let mut frontier: Vec<u32> = Vec::new();
        while weight < target {
            let v = if let Some(pos) = frontier
                .iter()
                .enumerate()
                .filter(|&(_, &v)| part[v as usize] == usize::MAX)
                .max_by_key(|&(_, &v)| gain[v as usize])
                .map(|(i, _)| i)
            {
                frontier.swap_remove(pos)
            } else {
                // Fresh seed: next unassigned vertex.
                while oi < n && part[order[oi] as usize] != usize::MAX {
                    oi += 1;
                }
                if oi >= n {
                    break;
                }
                order[oi]
            };
            if part[v as usize] != usize::MAX {
                continue;
            }
            if p + 1 < k && weight + level.vw[v as usize] > max_weight && weight > 0 {
                // Would overflow this part; leave it for a later part.
                continue;
            }
            part[v as usize] = p;
            weight += level.vw[v as usize];
            for &(u, w) in &level.adj[v as usize] {
                if part[u as usize] == usize::MAX {
                    gain[u as usize] += w as i64;
                    frontier.push(u);
                }
            }
            if p + 1 == k {
                // Last part absorbs everything remaining; ignore the target.
                continue;
            }
        }
    }
    // Sweep up any vertices the growth missed (disconnected remainders).
    let sizes = {
        let mut s = vec![0u64; k];
        for v in 0..n {
            if part[v] != usize::MAX {
                s[part[v]] += level.vw[v];
            }
        }
        s
    };
    let mut sizes = sizes;
    for (v, lbl) in part.iter_mut().enumerate() {
        if *lbl == usize::MAX {
            // aa-lint: allow(AA01, k is at least 1 so the 0..k range is non-empty)
            let p = (0..k).min_by_key(|&p| sizes[p]).unwrap();
            *lbl = p;
            sizes[p] += level.vw[v];
        }
    }
    part
}

/// One FM-style refinement pass at a level. Moves boundary vertices to the
/// adjacent part with the highest positive cut gain, respecting the balance
/// bound. Returns whether any move happened.
pub(crate) fn refine_pass(level: &Level, part: &mut [usize], k: usize, max_weight: u64) -> bool {
    let n = level.n();
    let mut part_weight = vec![0u64; k];
    for v in 0..n {
        part_weight[part[v]] += level.vw[v];
    }
    let mut moved_any = false;
    let mut conn: Vec<u64> = vec![0; k];
    for v in 0..n {
        let cur = part[v];
        // Connectivity of v to each part.
        for c in conn.iter_mut() {
            *c = 0;
        }
        let mut is_boundary = false;
        for &(u, w) in &level.adj[v] {
            conn[part[u as usize]] += w;
            if part[u as usize] != cur {
                is_boundary = true;
            }
        }
        if !is_boundary {
            continue;
        }
        let internal = conn[cur];
        let mut best: Option<(usize, u64)> = None;
        for p in 0..k {
            if p == cur || conn[p] <= internal {
                continue;
            }
            if part_weight[p] + level.vw[v] > max_weight {
                continue;
            }
            if best.is_none_or(|(_, bw)| conn[p] > bw) {
                best = Some((p, conn[p]));
            }
        }
        if let Some((p, _)) = best {
            part_weight[cur] -= level.vw[v];
            part_weight[p] += level.vw[v];
            part[v] = p;
            moved_any = true;
        }
    }
    moved_any
}

impl Partitioner for MultilevelKWay {
    fn partition(&self, g: &Graph, k: usize) -> Partition {
        assert!(k >= 1);
        let mut out = Partition::unassigned(g.capacity(), k);
        let n = g.vertex_count();
        if n == 0 {
            return out;
        }
        if k == 1 {
            for v in g.vertices() {
                out.assign(v, 0);
            }
            return out;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let (base, orig_of) = build_base(g);
        let total: u64 = base.vw.iter().sum();
        let max_weight = ((total as f64 / k as f64) * (1.0 + self.epsilon))
            .ceil()
            .max(1.0) as u64;

        // Coarsen.
        let stop_at = (self.coarse_factor * k).max(200);
        let mut levels: Vec<Level> = vec![base];
        // aa-lint: allow(AA01, levels starts with one element and only grows — last() cannot be empty)
        while levels.last().unwrap().n() > stop_at {
            // aa-lint: allow(AA01, same non-empty invariant as the loop condition)
            let last = levels.last().unwrap();
            let matched = heavy_edge_matching(last, &mut rng);
            let next = contract(last, &matched);
            if next.n() as f64 > 0.95 * last.n() as f64 {
                break; // matching stalled (e.g. star graphs); stop coarsening
            }
            levels.push(next);
        }

        // Initial partition on the coarsest level.
        // aa-lint: allow(AA01, levels is never emptied after its seeded first element)
        let coarsest = levels.last().unwrap();
        let mut part = initial_partition(coarsest, k, max_weight, &mut rng);
        for _ in 0..self.refine_passes {
            if !refine_pass(coarsest, &mut part, k, max_weight) {
                break;
            }
        }

        // Uncoarsen + refine.
        for li in (1..levels.len()).rev() {
            let fine = &levels[li - 1];
            let coarse_of = &levels[li].coarse_of;
            let mut fine_part = vec![0usize; fine.n()];
            for v in 0..fine.n() {
                fine_part[v] = part[coarse_of[v] as usize];
            }
            for _ in 0..self.refine_passes {
                if !refine_pass(fine, &mut fine_part, k, max_weight) {
                    break;
                }
            }
            part = fine_part;
        }

        for (dense, &orig) in orig_of.iter().enumerate() {
            out.assign(orig, part[dense]);
        }
        out
    }

    fn name(&self) -> &'static str {
        "multilevel-kway"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::{balance, edge_cut};
    use crate::RoundRobinPartitioner;
    use aa_graph::generators;

    #[test]
    fn valid_balanced_partition() {
        let g = generators::barabasi_albert(500, 3, 1, 2);
        let p = MultilevelKWay::default().partition(&g, 8);
        p.validate(&g).unwrap();
        assert!(
            balance(&p) <= 1.0 + 0.10 + 0.05,
            "balance {} exceeds bound",
            balance(&p)
        );
    }

    #[test]
    fn beats_round_robin_on_cut() {
        let g = generators::planted_partition(8, 40, 0.3, 0.005, 1, 7);
        let ml = MultilevelKWay::default().partition(&g, 8);
        let rr = RoundRobinPartitioner.partition(&g, 8);
        let (cm, cr) = (edge_cut(&g, &ml), edge_cut(&g, &rr));
        assert!(
            2 * cm < cr,
            "multilevel cut {cm} should be far below round-robin {cr}"
        );
    }

    #[test]
    fn recovers_planted_communities_nearly_perfectly() {
        let g = generators::planted_partition(4, 50, 0.4, 0.002, 1, 3);
        let p = MultilevelKWay::default().partition(&g, 4);
        // Nearly all intra-community edges should be uncut.
        let cut = edge_cut(&g, &p);
        let m = g.edge_count();
        assert!(
            (cut as f64) < 0.15 * m as f64,
            "cut {cut} of {m} edges is too high"
        );
    }

    #[test]
    fn handles_small_graphs() {
        let g = generators::path(3);
        let p = MultilevelKWay::default().partition(&g, 2);
        p.validate(&g).unwrap();
    }

    #[test]
    fn handles_k_exceeding_n() {
        let g = generators::path(3);
        let p = MultilevelKWay::default().partition(&g, 8);
        p.validate(&g).unwrap();
        assert_eq!(p.part_sizes().iter().sum::<usize>(), 3);
    }

    #[test]
    fn handles_disconnected_graphs() {
        let mut g = generators::path(40);
        g.remove_edge(19, 20);
        g.remove_edge(9, 10);
        let p = MultilevelKWay::default().partition(&g, 4);
        p.validate(&g).unwrap();
        assert!(balance(&p) <= 1.25);
    }

    #[test]
    fn handles_star_graph_matching_stall() {
        // Heavy-edge matching on a star can only contract one pair per round;
        // the stall guard must prevent infinite loops.
        let g = generators::star(300);
        let p = MultilevelKWay::default().partition(&g, 4);
        p.validate(&g).unwrap();
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = generators::barabasi_albert(200, 2, 1, 9);
        let a = MultilevelKWay::default().partition(&g, 4);
        let b = MultilevelKWay::default().partition(&g, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn single_part() {
        let g = generators::cycle(10);
        let p = MultilevelKWay::default().partition(&g, 1);
        p.validate(&g).unwrap();
        assert_eq!(edge_cut(&g, &p), 0);
    }

    #[test]
    fn skips_tombstones() {
        let mut g = generators::barabasi_albert(100, 2, 1, 4);
        g.remove_vertex(10);
        g.remove_vertex(50);
        let p = MultilevelKWay::default().partition(&g, 4);
        p.validate(&g).unwrap();
        assert_eq!(p.part_sizes().iter().sum::<usize>(), 98);
    }
}
