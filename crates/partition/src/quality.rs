//! Partition quality metrics.
//!
//! Everything the papers report about partitions lives here: the edge cut
//! (total communication volume proxy), the per-part cut size (per-processor
//! communication load), the balance factor (computational load), and the
//! "new cut edges created by a vertex-addition batch" metric of Figure 7.

use crate::partition::Partition;
use aa_graph::{Graph, VertexId};

/// Number of cut edges: edges whose endpoints lie in different parts.
pub fn edge_cut(g: &Graph, p: &Partition) -> usize {
    g.edges()
        .filter(|&(u, v, _)| p.part_of(u) != p.part_of(v))
        .count()
}

/// Total weight of cut edges.
pub fn cut_weight(g: &Graph, p: &Partition) -> u64 {
    g.edges()
        .filter(|&(u, v, _)| p.part_of(u) != p.part_of(v))
        .map(|(_, _, w)| w as u64)
        .sum()
}

/// Cut size of every part: number of cut edges with an endpoint in that part.
/// (Each cut edge counts once for each of its two parts — this is the paper's
/// per-sub-graph "cut-size".)
pub fn per_part_cut(g: &Graph, p: &Partition) -> Vec<usize> {
    let mut cut = vec![0usize; p.num_parts];
    for (u, v, _) in g.edges() {
        let (pu, pv) = (p.part_of(u), p.part_of(v));
        if pu != pv {
            if let Some(a) = pu {
                cut[a] += 1;
            }
            if let Some(b) = pv {
                cut[b] += 1;
            }
        }
    }
    cut
}

/// Balance factor: `max_part_size * k / total_assigned`. 1.0 is perfect;
/// the multilevel partitioner keeps this ≤ 1 + ε.
pub fn balance(p: &Partition) -> f64 {
    let sizes = p.part_sizes();
    let total: usize = sizes.iter().sum();
    if total == 0 {
        return 1.0;
    }
    // aa-lint: allow(AA01, the empty-partition early-return above guarantees sizes is non-empty)
    let max = *sizes.iter().max().unwrap();
    max as f64 * p.num_parts as f64 / total as f64
}

/// Number of *new* cut edges introduced by the vertices in `batch`: cut edges
/// with at least one endpoint in the batch. This is the quantity plotted in
/// the paper's Figure 7 for comparing processor-assignment strategies.
pub fn new_cut_edges(g: &Graph, p: &Partition, batch: &[VertexId]) -> usize {
    let mut in_batch = vec![false; g.capacity()];
    for &v in batch {
        in_batch[v as usize] = true;
    }
    g.edges()
        .filter(|&(u, v, _)| in_batch[u as usize] || in_batch[v as usize])
        .filter(|&(u, v, _)| p.part_of(u) != p.part_of(v))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aa_graph::generators;

    fn two_part_path() -> (Graph, Partition) {
        let g = generators::path(4); // 0-1-2-3
        let mut p = Partition::unassigned(4, 2);
        p.assign(0, 0);
        p.assign(1, 0);
        p.assign(2, 1);
        p.assign(3, 1);
        (g, p)
    }

    use aa_graph::Graph;

    #[test]
    fn cut_of_split_path() {
        let (g, p) = two_part_path();
        assert_eq!(edge_cut(&g, &p), 1);
        assert_eq!(per_part_cut(&g, &p), vec![1, 1]);
        assert!((balance(&p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cut_weight_sums_weights() {
        let mut g = Graph::with_vertices(3);
        g.add_edge(0, 1, 5);
        g.add_edge(1, 2, 7);
        let mut p = Partition::unassigned(3, 2);
        p.assign(0, 0);
        p.assign(1, 1);
        p.assign(2, 1);
        assert_eq!(cut_weight(&g, &p), 5);
    }

    #[test]
    fn balance_detects_skew() {
        let mut p = Partition::unassigned(4, 2);
        p.assign(0, 0);
        p.assign(1, 0);
        p.assign(2, 0);
        p.assign(3, 1);
        assert!((balance(&p) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn new_cut_edges_counts_batch_incident_only() {
        // 0-1 in part 0; new vertices 2,3: 2 in part 1 connected to 0 (cut)
        // and to 3 in part 1 (not cut). Old edge 0-1 is not counted even if cut.
        let mut g = generators::path(2);
        let a = g.add_vertex();
        let b = g.add_vertex();
        g.add_edge(a, 0, 1);
        g.add_edge(a, b, 1);
        let mut p = Partition::unassigned(4, 2);
        p.assign(0, 0);
        p.assign(1, 1); // old edge 0-1 is cut but not "new"
        p.assign(a, 1);
        p.assign(b, 1);
        assert_eq!(new_cut_edges(&g, &p, &[a, b]), 1);
        assert_eq!(edge_cut(&g, &p), 2);
    }
}
