//! The [`Partitioner`] trait and cheap baseline partitioners.

use crate::partition::Partition;
use aa_graph::{Graph, VertexId};

/// A k-way graph partitioner. Implementations must assign every live vertex
/// of `g` to a part in `0..k` and leave tombstones unassigned.
pub trait Partitioner {
    /// Partitions the live vertices of `g` into `k` parts.
    fn partition(&self, g: &Graph, k: usize) -> Partition;

    /// Human-readable name, used in reports.
    fn name(&self) -> &'static str;
}

/// Assigns live vertices to parts cyclically in id order. Perfect vertex
/// balance, oblivious to structure — the paper's simplest baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct RoundRobinPartitioner;

impl Partitioner for RoundRobinPartitioner {
    fn partition(&self, g: &Graph, k: usize) -> Partition {
        assert!(k >= 1);
        let mut p = Partition::unassigned(g.capacity(), k);
        for (i, v) in g.vertices().enumerate() {
            p.assign(v, i % k);
        }
        p
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Assigns each vertex by a multiplicative hash of its id. Stateless and
/// stable under vertex additions (an existing vertex never moves), which makes
/// it a useful contrast in ablations.
#[derive(Debug, Default, Clone, Copy)]
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    fn partition(&self, g: &Graph, k: usize) -> Partition {
        assert!(k >= 1);
        let mut p = Partition::unassigned(g.capacity(), k);
        for v in g.vertices() {
            // Fibonacci hashing on the id.
            let h = (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            p.assign(v, (h % k as u64) as usize);
        }
        p
    }

    fn name(&self) -> &'static str {
        "hash"
    }
}

/// Grows parts by breadth-first search from successive seeds until each part
/// reaches `ceil(n/k)` vertices. Captures locality without the multilevel
/// machinery; the classic "cheap but structure-aware" baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct BfsGrowPartitioner;

impl Partitioner for BfsGrowPartitioner {
    fn partition(&self, g: &Graph, k: usize) -> Partition {
        assert!(k >= 1);
        let n = g.vertex_count();
        let mut p = Partition::unassigned(g.capacity(), k);
        if n == 0 {
            return p;
        }
        let target = n.div_ceil(k);
        let mut visited = vec![false; g.capacity()];
        let mut order: Vec<VertexId> = g.vertices().collect();
        // Seed from high-degree vertices first: hubs anchor parts.
        order.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
        let mut part = 0usize;
        let mut in_part = 0usize;
        let mut queue = std::collections::VecDeque::new();
        let mut seed_iter = order.into_iter();
        loop {
            let v = match queue.pop_front() {
                Some(v) => v,
                None => match seed_iter.find(|&s| !visited[s as usize]) {
                    Some(s) => s,
                    None => break,
                },
            };
            if visited[v as usize] {
                continue;
            }
            visited[v as usize] = true;
            if in_part >= target && part + 1 < k {
                part += 1;
                in_part = 0;
                queue.clear(); // start the next part from a fresh seed
            }
            p.assign(v, part);
            in_part += 1;
            for &(u, _) in g.neighbors(v) {
                if !visited[u as usize] {
                    queue.push_back(u);
                }
            }
        }
        p
    }

    fn name(&self) -> &'static str {
        "bfs-grow"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::{balance, edge_cut};
    use aa_graph::generators;

    fn check_valid(g: &Graph, p: &Partition, k: usize) {
        p.validate(g).unwrap();
        assert_eq!(p.num_parts, k);
    }

    #[test]
    fn round_robin_balances_exactly() {
        let g = generators::barabasi_albert(101, 2, 1, 1);
        let p = RoundRobinPartitioner.partition(&g, 4);
        check_valid(&g, &p, 4);
        let sizes = p.part_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 101);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn round_robin_skips_tombstones() {
        let mut g = generators::path(6);
        g.remove_vertex(2);
        let p = RoundRobinPartitioner.partition(&g, 2);
        check_valid(&g, &p, 2);
        assert_eq!(p.part_sizes().iter().sum::<usize>(), 5);
    }

    #[test]
    fn hash_is_stable_under_growth() {
        let mut g = generators::path(50);
        let p1 = HashPartitioner.partition(&g, 4);
        for _ in 0..10 {
            g.add_vertex();
        }
        let p2 = HashPartitioner.partition(&g, 4);
        for v in 0..50u32 {
            assert_eq!(p1.part_of(v), p2.part_of(v), "vertex {v} moved");
        }
    }

    #[test]
    fn bfs_grow_beats_round_robin_on_communities() {
        let g = generators::planted_partition(4, 30, 0.4, 0.01, 1, 5);
        let rr = RoundRobinPartitioner.partition(&g, 4);
        let bfs = BfsGrowPartitioner.partition(&g, 4);
        check_valid(&g, &bfs, 4);
        assert!(balance(&bfs) <= 1.35, "balance {}", balance(&bfs));
        assert!(
            edge_cut(&g, &bfs) < edge_cut(&g, &rr),
            "bfs cut {} should beat round-robin cut {}",
            edge_cut(&g, &bfs),
            edge_cut(&g, &rr)
        );
    }

    #[test]
    fn bfs_grow_handles_disconnected_graphs() {
        let mut g = generators::path(10);
        g.remove_edge(4, 5);
        let p = BfsGrowPartitioner.partition(&g, 3);
        check_valid(&g, &p, 3);
    }

    #[test]
    fn single_part_assigns_everything_to_zero() {
        let g = generators::cycle(7);
        for pt in [
            &RoundRobinPartitioner as &dyn Partitioner,
            &HashPartitioner,
            &BfsGrowPartitioner,
        ] {
            let p = pt.partition(&g, 1);
            assert!(
                g.vertices().all(|v| p.part_of(v) == Some(0)),
                "{}",
                pt.name()
            );
        }
    }
}
