//! Deterministic network-fault injection for the simulated cluster.
//!
//! A [`FaultPlan`] decides, per individual transfer on a directed (src, dst)
//! link, whether the network drops it, duplicates it, or delivers it intact,
//! and whether each receiver's inbox is reordered. Every decision is drawn
//! from a ChaCha8 stream keyed by `(plan seed, src, dst, per-link decision
//! index)`, so a run replays bit-exactly from the same seed regardless of
//! how other links interleave — the property the chaos property tests and
//! the `chaos` CLI command rely on.
//!
//! The plan only *decides*; [`crate::SimCluster::exchange_with_receipts`]
//! applies the decisions, keeps charging clocks and ledger for dropped
//! bytes (the network was used either way), and reports per-sender delivery
//! receipts so the protocol layer can retransmit.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Fault probabilities of one directed link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    /// Probability a transfer is dropped entirely.
    pub p_drop: f64,
    /// Probability a delivered transfer arrives twice.
    pub p_dup: f64,
}

impl LinkFaults {
    /// Validates and builds link fault rates.
    pub fn new(p_drop: f64, p_dup: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_drop) && (0.0..=1.0).contains(&p_dup),
            "fault probabilities must lie in [0, 1]: p_drop={p_drop} p_dup={p_dup}"
        );
        LinkFaults { p_drop, p_dup }
    }

    /// A perfectly reliable link.
    pub fn reliable() -> Self {
        LinkFaults {
            p_drop: 0.0,
            p_dup: 0.0,
        }
    }
}

/// The network's verdict on one transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// The transfer arrives; `duplicated` means it arrives twice.
    Delivered {
        /// Whether a second copy also arrives.
        duplicated: bool,
    },
    /// The transfer is lost.
    Dropped,
}

/// A scheduled fail-stop processor crash: `rank` dies at the start of
/// recombination step `step` (1-based, matching the engine's step counter)
/// and stays down until the supervision layer recovers it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashFault {
    /// Recombination step at which the rank dies.
    pub step: u64,
    /// The dying rank.
    pub rank: usize,
}

/// A straggler fault: `rank`'s compute charges (and therefore its LogP
/// virtual clock) are inflated by `scale` for the whole run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerFault {
    /// The slow rank.
    pub rank: usize,
    /// Compute slowdown factor (> 1 means slower).
    pub scale: f64,
}

/// A seeded, replayable schedule of message faults.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    default: LinkFaults,
    overrides: HashMap<(usize, usize), LinkFaults>,
    reorder: bool,
    /// Scheduled fail-stop crashes, kept sorted by step.
    crashes: Vec<CrashFault>,
    /// Per-rank compute slowdowns.
    stragglers: Vec<StragglerFault>,
    /// Decisions drawn so far per directed link (the replay position).
    counters: HashMap<(usize, usize), u64>,
    /// Shuffles drawn so far per receiver.
    shuffle_counters: HashMap<usize, u64>,
}

/// SplitMix64-style finalizer used to key per-decision streams.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan applying `p_drop`/`p_dup` to every link, with reordering on.
    pub fn new(seed: u64, p_drop: f64, p_dup: f64) -> Self {
        FaultPlan {
            seed,
            default: LinkFaults::new(p_drop, p_dup),
            overrides: HashMap::new(),
            reorder: true,
            crashes: Vec::new(),
            stragglers: Vec::new(),
            counters: HashMap::new(),
            shuffle_counters: HashMap::new(),
        }
    }

    /// Enables or disables inbox reordering (on by default).
    pub fn with_reorder(mut self, reorder: bool) -> Self {
        self.reorder = reorder;
        self
    }

    /// Overrides the fault rates of the directed link `src -> dst`.
    pub fn set_link(&mut self, src: usize, dst: usize, faults: LinkFaults) {
        self.overrides.insert((src, dst), faults);
    }

    /// Fault rates in force on the directed link `src -> dst`.
    pub fn link(&self, src: usize, dst: usize) -> LinkFaults {
        self.overrides
            .get(&(src, dst))
            .copied()
            .unwrap_or(self.default)
    }

    /// Schedules a fail-stop crash: `rank` dies at recombination step `step`.
    /// The schedule is part of the plan, so a run replays the same crashes
    /// from the same plan. Crashes are kept sorted by step.
    pub fn schedule_crash(&mut self, step: u64, rank: usize) {
        self.crashes.push(CrashFault { step, rank });
        self.crashes.sort_by_key(|c| (c.step, c.rank));
    }

    /// Builder form of [`FaultPlan::schedule_crash`].
    pub fn with_crash(mut self, step: u64, rank: usize) -> Self {
        self.schedule_crash(step, rank);
        self
    }

    /// Marks `rank` as a straggler: its compute charges are multiplied by
    /// `scale` (> 1 = slower). A later call for the same rank overrides the
    /// earlier one.
    pub fn set_straggler(&mut self, rank: usize, scale: f64) {
        assert!(scale > 0.0, "straggler scale must be positive: {scale}");
        if let Some(s) = self.stragglers.iter_mut().find(|s| s.rank == rank) {
            s.scale = scale;
        } else {
            self.stragglers.push(StragglerFault { rank, scale });
        }
    }

    /// Builder form of [`FaultPlan::set_straggler`].
    pub fn with_straggler(mut self, rank: usize, scale: f64) -> Self {
        self.set_straggler(rank, scale);
        self
    }

    /// Removes any straggler fault on `rank` (the rank runs at nominal
    /// speed again).
    pub fn clear_straggler(&mut self, rank: usize) {
        self.stragglers.retain(|s| s.rank != rank);
    }

    /// The scheduled crashes, sorted by step.
    pub fn crashes(&self) -> &[CrashFault] {
        &self.crashes
    }

    /// The configured stragglers.
    pub fn stragglers(&self) -> &[StragglerFault] {
        &self.stragglers
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether receiver inboxes are reordered.
    pub fn reorder(&self) -> bool {
        self.reorder
    }

    /// Rewinds all decision streams to the beginning: a plan reset this way
    /// replays the exact same fault schedule.
    pub fn reset_replay(&mut self) {
        self.counters.clear();
        self.shuffle_counters.clear();
    }

    /// Draws the fate of the next transfer on `src -> dst`.
    pub fn decide(&mut self, src: usize, dst: usize) -> Delivery {
        let n = self.counters.entry((src, dst)).or_insert(0);
        *n += 1;
        let count = *n;
        let faults = self.link(src, dst);
        // aa-lint: allow(AA03, exact zero is the "link is reliable" config sentinel, not a computed estimate)
        if faults.p_drop == 0.0 && faults.p_dup == 0.0 {
            // Keep the zero-fault path free of RNG work.
            return Delivery::Delivered { duplicated: false };
        }
        let key =
            mix(self.seed ^ mix((src as u64) << 40 | (dst as u64) << 20 | 0x5EED) ^ mix(count));
        let mut rng = ChaCha8Rng::seed_from_u64(key);
        if rng.gen_bool(faults.p_drop) {
            Delivery::Dropped
        } else {
            Delivery::Delivered {
                duplicated: rng.gen_bool(faults.p_dup),
            }
        }
    }

    /// Deterministically shuffles receiver `dst`'s inbox (no-op unless
    /// reordering is enabled).
    pub fn shuffle_inbox<T>(&mut self, dst: usize, inbox: &mut [T]) {
        if !self.reorder || inbox.len() < 2 {
            return;
        }
        let n = self.shuffle_counters.entry(dst).or_insert(0);
        *n += 1;
        let key = mix(self.seed ^ mix(0x00DD_BA11 ^ (dst as u64) << 32) ^ mix(*n));
        let mut rng = ChaCha8Rng::seed_from_u64(key);
        // Fisher–Yates.
        for i in (1..inbox.len()).rev() {
            let j = rng.gen_range(0..=i);
            inbox.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_is_deterministic_per_link() {
        let mut a = FaultPlan::new(42, 0.3, 0.2);
        let mut b = FaultPlan::new(42, 0.3, 0.2);
        // Interleave links differently; per-link streams must agree.
        let from_a: Vec<Delivery> = (0..100).map(|_| a.decide(0, 1)).collect();
        for i in 0..300 {
            b.decide(2, 3 + i % 2);
        }
        let from_b: Vec<Delivery> = (0..100).map(|_| b.decide(0, 1)).collect();
        assert_eq!(from_a, from_b);
    }

    #[test]
    fn reset_replay_rewinds_the_schedule() {
        let mut plan = FaultPlan::new(7, 0.5, 0.1);
        let first: Vec<Delivery> = (0..50).map(|_| plan.decide(1, 0)).collect();
        plan.reset_replay();
        let second: Vec<Delivery> = (0..50).map(|_| plan.decide(1, 0)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn rates_are_roughly_respected() {
        let mut plan = FaultPlan::new(1, 0.3, 0.25);
        let mut drops = 0;
        let mut dups = 0;
        let trials = 10_000;
        for _ in 0..trials {
            match plan.decide(0, 1) {
                Delivery::Dropped => drops += 1,
                Delivery::Delivered { duplicated: true } => dups += 1,
                Delivery::Delivered { duplicated: false } => {}
            }
        }
        let drop_rate = drops as f64 / trials as f64;
        // Duplication is conditional on delivery.
        let dup_rate = dups as f64 / (trials - drops) as f64;
        assert!((drop_rate - 0.3).abs() < 0.03, "drop rate {drop_rate}");
        assert!((dup_rate - 0.25).abs() < 0.03, "dup rate {dup_rate}");
    }

    #[test]
    fn per_link_overrides_take_precedence() {
        let mut plan = FaultPlan::new(3, 0.0, 0.0);
        plan.set_link(0, 1, LinkFaults::new(1.0, 0.0));
        for _ in 0..20 {
            assert_eq!(plan.decide(0, 1), Delivery::Dropped);
            assert_eq!(plan.decide(1, 0), Delivery::Delivered { duplicated: false });
        }
        assert_eq!(plan.link(0, 1), LinkFaults::new(1.0, 0.0));
        assert_eq!(plan.link(2, 3), LinkFaults::reliable());
    }

    #[test]
    fn zero_rates_never_fault() {
        let mut plan = FaultPlan::new(9, 0.0, 0.0);
        for i in 0..200 {
            assert_eq!(
                plan.decide(i % 4, (i + 1) % 4),
                Delivery::Delivered { duplicated: false }
            );
        }
    }

    #[test]
    fn shuffle_permutes_deterministically() {
        let mut a = FaultPlan::new(11, 0.1, 0.0);
        let mut b = FaultPlan::new(11, 0.1, 0.0);
        let mut xs: Vec<u32> = (0..40).collect();
        let mut ys = xs.clone();
        a.shuffle_inbox(2, &mut xs);
        b.shuffle_inbox(2, &mut ys);
        assert_eq!(xs, ys);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..40).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "40 elements almost surely move");
        // Reorder disabled: identity.
        let mut plan = FaultPlan::new(11, 0.1, 0.0).with_reorder(false);
        let mut zs: Vec<u32> = (0..10).collect();
        plan.shuffle_inbox(0, &mut zs);
        assert_eq!(zs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn invalid_probability_rejected() {
        FaultPlan::new(0, 1.5, 0.0);
    }

    #[test]
    fn crash_schedule_is_sorted_and_replayable() {
        let plan = FaultPlan::new(0, 0.0, 0.0)
            .with_crash(30, 2)
            .with_crash(5, 1)
            .with_crash(30, 0);
        let steps: Vec<(u64, usize)> = plan.crashes().iter().map(|c| (c.step, c.rank)).collect();
        assert_eq!(steps, vec![(5, 1), (30, 0), (30, 2)]);
        // Cloning the plan (how a run is replayed) preserves the schedule.
        assert_eq!(plan.clone().crashes(), plan.crashes());
    }

    #[test]
    fn straggler_override_replaces_earlier_entry() {
        let mut plan = FaultPlan::new(0, 0.0, 0.0).with_straggler(3, 10.0);
        plan.set_straggler(3, 25.0);
        plan.set_straggler(1, 4.0);
        assert_eq!(plan.stragglers().len(), 2);
        let s3 = plan.stragglers().iter().find(|s| s.rank == 3).unwrap();
        assert_eq!(s3.scale, 25.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_straggler_scale_rejected() {
        FaultPlan::new(0, 0.0, 0.0).with_straggler(0, 0.0);
    }
}
