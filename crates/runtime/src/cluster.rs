//! The [`SimCluster`]: byte-accounted collectives over LogP virtual clocks.

use crate::fault::{Delivery, FaultPlan};
use aa_logp::{schedule, CostLedger, LogPParams, Phase, VirtualClocks};
use std::time::Duration;

/// How personalized all-to-all exchanges are scheduled and charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeMode {
    /// The papers' schedule: one message on the network at a time
    /// (Θ(P²) sequential transfers, flood-free).
    Serialized,
    /// Round-based pairwise exchange (P−1 rounds, links independent).
    /// Used by ablations.
    RoundBased,
}

/// One outgoing transfer: destination processor, payload, and its size in
/// bytes (the algorithm layer knows its own serialization; the cluster only
/// needs the byte count for charging).
#[derive(Debug, Clone)]
pub struct TransferOut<T> {
    pub dst: usize,
    pub bytes: usize,
    pub payload: T,
}

/// Result of [`SimCluster::exchange_with_receipts`]: per-receiver inboxes of
/// `(src, payload)`, plus per-*sender* delivery receipts in the order that
/// sender's outbox listed its transfers (`true` = delivered at least once).
pub type ExchangeReceipts<T> = (Vec<Vec<(usize, T)>>, Vec<Vec<bool>>);

/// What the network did with a traced transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryKind {
    /// Delivered intact (the only kind on a fault-free cluster).
    Delivered,
    /// Lost by the injected fault plan; the bytes were still charged.
    Dropped,
    /// An injected second copy of a delivered transfer.
    Duplicate,
    /// Sent to (or from) a crashed rank: the transfer rode the network but
    /// nobody was home to receive or ack it. The bytes were still charged.
    LostDown,
}

impl std::fmt::Display for DeliveryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DeliveryKind::Delivered => "delivered",
            DeliveryKind::Dropped => "dropped",
            DeliveryKind::Duplicate => "duplicate",
            DeliveryKind::LostDown => "lost-down",
        })
    }
}

/// Outcome of judging one transfer against the cluster's down-state and the
/// installed fault plan. Judging is side-effect-free on the cluster (only the
/// plan's per-link replay counters advance), which is what lets the threaded
/// backend judge per-sender concurrently and settle sequentially.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Verdict {
    /// Sent to (or from) a crashed rank; never received or acked.
    LostDown,
    /// Dropped by the fault plan.
    Dropped,
    /// Delivered; `duplicated` means a second copy also arrives.
    Delivered {
        /// Whether a second copy also arrives.
        duplicated: bool,
    },
}

/// Judges one transfer: the down-rank check comes first and does *not*
/// advance the link's decision stream (a dead link draws no randomness), so
/// fault schedules replay identically across crash/recovery timings. Each
/// directed link's stream is only ever advanced by its own sender, which
/// makes the verdict independent of how senders interleave.
// aa-lint: allow(AA07, down is the cluster's per-rank table sized to proc_count and src/dst are asserted below proc_count by both judge call sites before judging)
pub(crate) fn judge_transfer(
    down: &[bool],
    plan: Option<&mut FaultPlan>,
    src: usize,
    dst: usize,
) -> Verdict {
    if down[dst] || down[src] {
        return Verdict::LostDown;
    }
    match plan {
        Some(plan) => match plan.decide(src, dst) {
            Delivery::Dropped => Verdict::Dropped,
            Delivery::Delivered { duplicated } => Verdict::Delivered { duplicated },
        },
        None => Verdict::Delivered { duplicated: false },
    }
}

/// One recorded communication event (tracing enabled via
/// [`SimCluster::enable_trace`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Sending processor.
    pub src: usize,
    /// Receiving processor.
    pub dst: usize,
    /// Payload bytes.
    pub bytes: usize,
    /// Phase the transfer was charged to.
    pub phase: Phase,
    /// Cluster makespan (µs) right after the transfer was charged.
    pub makespan_us: f64,
    /// Delivery outcome under the active fault plan.
    pub kind: DeliveryKind,
}

/// A simulated cluster of `P` virtual processors.
///
/// All methods are collectives or per-processor charges; the algorithm layer
/// owns the per-processor state and calls these to move data/time.
///
/// ```
/// use aa_runtime::{ExchangeMode, SimCluster, TransferOut};
/// use aa_logp::{LogPParams, Phase};
///
/// let mut cluster = SimCluster::new(2, LogPParams::ethernet_1gbe(), ExchangeMode::Serialized);
/// let inbox = cluster.exchange(
///     Phase::Recombination,
///     vec![vec![TransferOut { dst: 1, bytes: 64, payload: "hello" }], vec![]],
/// );
/// assert_eq!(inbox[1], vec![(0, "hello")]);
/// assert!(cluster.makespan_us() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SimCluster {
    params: LogPParams,
    clocks: VirtualClocks,
    ledger: CostLedger,
    mode: ExchangeMode,
    trace: Option<Vec<TraceEvent>>,
    compute_scale: f64,
    fault: Option<FaultPlan>,
    /// Fail-stop state per rank: a down rank neither receives nor acks.
    down: Vec<bool>,
    /// Per-rank compute slowdown (straggler faults); 1.0 = nominal.
    rank_scale: Vec<f64>,
    /// Compute microseconds charged per rank (after all scaling), the
    /// signal the straggler detector compares across ranks.
    rank_compute_us: Vec<f64>,
    /// Scheduled crashes that already fired, keyed by `(step, rank)` so the
    /// schedule can be extended mid-run without re-firing old entries.
    crashes_fired: std::collections::HashSet<(u64, usize)>,
}

impl SimCluster {
    /// Creates a cluster of `p` processors with the given LogP parameters.
    pub fn new(p: usize, params: LogPParams, mode: ExchangeMode) -> Self {
        assert!(p >= 1, "cluster needs at least one processor");
        SimCluster {
            params,
            clocks: VirtualClocks::new(p),
            ledger: CostLedger::new(),
            mode,
            trace: None,
            compute_scale: 1.0,
            fault: None,
            down: vec![false; p],
            rank_scale: vec![1.0; p],
            rank_compute_us: vec![0.0; p],
            crashes_fired: std::collections::HashSet::new(),
        }
    }

    /// Installs (or with `None`, removes) a network fault plan. Faults apply
    /// only to [`SimCluster::exchange_with_receipts`]; the plain collectives
    /// model reliable transport. Straggler faults in the plan take effect
    /// immediately; scheduled crashes fire via
    /// [`SimCluster::fire_crashes_due`].
    // aa-lint: allow(AA07, rank-indexed tables are sized to proc_count at construction and the rank is range-guarded or asserted before the access)
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.rank_scale = vec![1.0; self.proc_count()];
        if let Some(plan) = &plan {
            for s in plan.stragglers() {
                if s.rank < self.rank_scale.len() {
                    self.rank_scale[s.rank] = s.scale;
                }
            }
        }
        self.crashes_fired.clear();
        self.fault = plan;
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// Mutable access to the active fault plan (e.g. to extend the crash
    /// schedule mid-run). Straggler edits made this way take effect on the
    /// next [`SimCluster::refresh_stragglers`] call.
    pub fn fault_plan_mut(&mut self) -> Option<&mut FaultPlan> {
        self.fault.as_mut()
    }

    /// Re-reads straggler scales from the installed plan (after mutating it
    /// via [`SimCluster::fault_plan_mut`]).
    // aa-lint: allow(AA07, rank-indexed tables are sized to proc_count at construction and the rank is range-guarded or asserted before the access)
    pub fn refresh_stragglers(&mut self) {
        self.rank_scale = vec![1.0; self.proc_count()];
        if let Some(plan) = &self.fault {
            for s in plan.stragglers() {
                if s.rank < self.rank_scale.len() {
                    self.rank_scale[s.rank] = s.scale;
                }
            }
        }
    }

    /// Fires every scheduled crash whose step is due (`c.step <= step`) and
    /// has not fired yet, marking those ranks down. Returns the newly downed
    /// ranks. A crash that would take down the last live rank is skipped
    /// (the simulation keeps at least one survivor to run recovery).
    // aa-lint: allow(AA07, rank-indexed tables are sized to proc_count at construction and the rank is range-guarded or asserted before the access)
    pub fn fire_crashes_due(&mut self, step: u64) -> Vec<usize> {
        let due: Vec<(u64, usize)> = match &self.fault {
            Some(plan) => plan
                .crashes()
                .iter()
                .filter(|c| c.step <= step && !self.crashes_fired.contains(&(c.step, c.rank)))
                .map(|c| (c.step, c.rank))
                .collect(),
            None => return Vec::new(),
        };
        let mut newly_down = Vec::new();
        for (step, rank) in due {
            self.crashes_fired.insert((step, rank));
            if rank >= self.proc_count() || self.down[rank] {
                continue;
            }
            if self.live_count() <= 1 {
                continue; // never kill the last survivor
            }
            self.down[rank] = true;
            newly_down.push(rank);
        }
        newly_down
    }

    /// Whether `rank` is currently down (fail-stopped).
    // aa-lint: allow(AA07, rank-indexed tables are sized to proc_count at construction and the rank is range-guarded or asserted before the access)
    pub fn is_down(&self, rank: usize) -> bool {
        self.down[rank]
    }

    /// The currently down ranks, ascending.
    // aa-lint: allow(AA07, rank-indexed tables are sized to proc_count at construction and the rank is range-guarded or asserted before the access)
    pub fn down_ranks(&self) -> Vec<usize> {
        (0..self.proc_count()).filter(|&r| self.down[r]).collect()
    }

    /// Number of live (not down) ranks.
    pub fn live_count(&self) -> usize {
        self.down.iter().filter(|&&d| !d).count()
    }

    /// Marks `rank` down (fail-stop). Used by manual fault injection; the
    /// scheduled path goes through [`SimCluster::fire_crashes_due`].
    // aa-lint: allow(AA07, rank-indexed tables are sized to proc_count at construction and the rank is range-guarded or asserted before the access)
    pub fn mark_down(&mut self, rank: usize) {
        assert!(rank < self.proc_count());
        self.down[rank] = true;
    }

    /// Brings `rank` back up (a replacement processor takes over the rank).
    // aa-lint: allow(AA07, rank-indexed tables are sized to proc_count at construction and the rank is range-guarded or asserted before the access)
    pub fn mark_up(&mut self, rank: usize) {
        assert!(rank < self.proc_count());
        self.down[rank] = false;
    }

    /// Compute microseconds charged so far per rank (after compute-scale and
    /// straggler scaling) — the straggler detector's input signal.
    pub fn compute_us_by_rank(&self) -> &[f64] {
        &self.rank_compute_us
    }

    /// Virtual clock of processor `p` (µs).
    pub fn proc_time_us(&self, p: usize) -> f64 {
        self.clocks.proc_time_us(p)
    }

    /// Sets the compute calibration factor: measured wall microseconds are
    /// multiplied by this before being charged to the virtual clocks. Use it
    /// to model slower (era-appropriate) processors than the host — e.g. ~10
    /// for a 2012 cluster node vs a modern laptop core. Default 1.0.
    pub fn set_compute_scale(&mut self, scale: f64) {
        assert!(scale > 0.0, "compute scale must be positive");
        self.compute_scale = scale;
    }

    /// Starts recording every transfer into an event trace (clears any
    /// previous trace). Intended for debugging and timeline visualization.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Stops tracing and returns the recorded events (empty if tracing was
    /// never enabled).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.take().unwrap_or_default()
    }

    /// Number of virtual processors.
    pub fn proc_count(&self) -> usize {
        self.clocks.proc_count()
    }

    /// LogP parameters in force.
    pub fn params(&self) -> &LogPParams {
        &self.params
    }

    /// Charges `elapsed` of measured local computation on processor `p`
    /// (wall microseconds × the compute-scale calibration factor × the
    /// rank's straggler scale, if any).
    // aa-lint: allow(AA07, rank-indexed tables are sized to proc_count at construction and the rank is range-guarded or asserted before the access)
    pub fn compute_measured(&mut self, p: usize, phase: Phase, elapsed: Duration) {
        let us = elapsed.as_secs_f64() * 1e6 * self.compute_scale * self.rank_scale[p];
        self.clocks.compute(p, us);
        self.rank_compute_us[p] += us;
        self.ledger.record_compute(phase, us);
    }

    /// Charges `us` microseconds of modeled computation on processor `p`
    /// (× the rank's straggler scale, if any).
    // aa-lint: allow(AA07, rank-indexed tables are sized to proc_count at construction and the rank is range-guarded or asserted before the access)
    pub fn compute_modeled(&mut self, p: usize, phase: Phase, us: f64) {
        let us = us * self.rank_scale[p];
        self.clocks.compute(p, us);
        self.rank_compute_us[p] += us;
        self.ledger.record_compute(phase, us);
    }

    /// Personalized all-to-all: every processor sends zero or more transfers;
    /// returns each processor's inbox as `(src, payload)` pairs, in a
    /// deterministic order. Transfers are charged per the configured
    /// [`ExchangeMode`]. `outbox.len()` must equal the processor count, and
    /// self-sends are forbidden (local data never touches the network).
    // aa-lint: allow(AA07, every dst is asserted below proc_count before the p*p pair table sized from proc_count is touched)
    pub fn exchange<T>(
        &mut self,
        phase: Phase,
        outbox: Vec<Vec<TransferOut<T>>>,
    ) -> Vec<Vec<(usize, T)>> {
        let p = self.proc_count();
        assert_eq!(outbox.len(), p, "outbox must have one slot per processor");
        // Group payloads per ordered (src, dst) pair; one aggregated model
        // transfer per pair (the papers batch all boundary DVs for a
        // neighbour into size-M messages).
        let mut per_pair_bytes = vec![0usize; p * p];
        let mut inbox: Vec<Vec<(usize, T)>> = (0..p).map(|_| Vec::new()).collect();
        for (src, transfers) in outbox.into_iter().enumerate() {
            for t in transfers {
                assert!(t.dst < p, "destination {} out of range", t.dst);
                assert_ne!(t.dst, src, "self-send from processor {src}");
                per_pair_bytes[src * p + t.dst] += t.bytes;
                inbox[t.dst].push((src, t.payload));
            }
        }
        self.charge_pairs(phase, &per_pair_bytes);
        inbox
    }

    /// Like [`SimCluster::exchange`], but subject to the installed
    /// [`FaultPlan`] and returning per-sender delivery receipts: for each
    /// processor, one `bool` per submitted transfer *in submission order*
    /// (`true` = delivered at least once, `false` = dropped). Dropped
    /// transfers still occupy the network — their bytes are charged to the
    /// clocks and the ledger exactly as if delivered — and are additionally
    /// counted in the ledger's drop counters and the event trace. Duplicated
    /// transfers arrive twice (and are charged twice); their receipt is
    /// `true`. With reordering enabled, each receiver's inbox is
    /// deterministically shuffled. Without a fault plan this is byte- and
    /// clock-identical to [`SimCluster::exchange`], with all receipts `true`.
    // aa-lint: allow(AA07, same assert-before-index shape as exchange)
    pub fn exchange_with_receipts<T: Clone>(
        &mut self,
        phase: Phase,
        outbox: Vec<Vec<TransferOut<T>>>,
    ) -> ExchangeReceipts<T> {
        let p = self.proc_count();
        assert_eq!(outbox.len(), p, "outbox must have one slot per processor");
        let (mut plan, down) = self.fault_and_down();
        let judged: Vec<(Vec<TransferOut<T>>, Vec<Verdict>)> = outbox
            .into_iter()
            .enumerate()
            .map(|(src, transfers)| {
                let verdicts = transfers
                    .iter()
                    .map(|t| {
                        assert!(t.dst < p, "destination {} out of range", t.dst);
                        assert_ne!(t.dst, src, "self-send from processor {src}");
                        judge_transfer(down, plan.as_deref_mut(), src, t.dst)
                    })
                    .collect();
                (transfers, verdicts)
            })
            .collect();
        self.settle_exchange(phase, judged)
    }

    /// Split borrow for the judge stage: the fault plan (mutable — judging
    /// advances per-link replay counters) alongside the down-rank flags.
    pub(crate) fn fault_and_down(&mut self) -> (Option<&mut FaultPlan>, &[bool]) {
        (self.fault.as_mut(), &self.down)
    }

    /// Applies already-judged transfers: charges bytes (including dropped and
    /// duplicated copies — the network was used either way), fills receiver
    /// inboxes and per-sender receipts, traces faulted transfers at the final
    /// makespan, and runs the deterministic inbox reshuffle. `judged` holds
    /// each sender's transfers with one verdict per transfer, in submission
    /// order; both backends funnel through here so the accounting is shared
    /// byte-for-byte.
    // aa-lint: allow(AA07, every dst was asserted below proc_count at judge time and the p*p pair table is sized from proc_count)
    pub(crate) fn settle_exchange<T: Clone>(
        &mut self,
        phase: Phase,
        judged: Vec<(Vec<TransferOut<T>>, Vec<Verdict>)>,
    ) -> ExchangeReceipts<T> {
        let p = self.proc_count();
        assert_eq!(judged.len(), p, "outbox must have one slot per processor");
        let mut per_pair_bytes = vec![0usize; p * p];
        let mut inbox: Vec<Vec<(usize, T)>> = (0..p).map(|_| Vec::new()).collect();
        let mut receipts: Vec<Vec<bool>> = (0..p).map(|_| Vec::new()).collect();
        // Faulted transfers are traced after the charge loop (at the final
        // makespan), keeping the trace ordered by time.
        let mut faulted: Vec<(usize, usize, usize, DeliveryKind)> = Vec::new();
        for (src, (transfers, verdicts)) in judged.into_iter().enumerate() {
            assert_eq!(transfers.len(), verdicts.len(), "one verdict per transfer");
            for (t, verdict) in transfers.into_iter().zip(verdicts) {
                per_pair_bytes[src * p + t.dst] += t.bytes;
                match verdict {
                    Verdict::LostDown => {
                        // Nobody home at one end: the transfer rides the
                        // network (bytes are charged via `per_pair_bytes`)
                        // but is never received or acked, so the sender sees
                        // a nack and will retransmit until the rank is
                        // recovered.
                        receipts[src].push(false);
                        let msgs = self.params.message_count(t.bytes) as u64;
                        self.ledger.record_drop(phase, msgs, t.bytes as u64);
                        faulted.push((src, t.dst, t.bytes, DeliveryKind::LostDown));
                    }
                    Verdict::Dropped => {
                        receipts[src].push(false);
                        let msgs = self.params.message_count(t.bytes) as u64;
                        self.ledger.record_drop(phase, msgs, t.bytes as u64);
                        faulted.push((src, t.dst, t.bytes, DeliveryKind::Dropped));
                    }
                    Verdict::Delivered { duplicated } => {
                        receipts[src].push(true);
                        if duplicated {
                            // The second copy also rides the network.
                            per_pair_bytes[src * p + t.dst] += t.bytes;
                            let msgs = self.params.message_count(t.bytes) as u64;
                            self.ledger.record_duplicate(phase, msgs, t.bytes as u64);
                            faulted.push((src, t.dst, t.bytes, DeliveryKind::Duplicate));
                            inbox[t.dst].push((src, t.payload.clone()));
                        }
                        inbox[t.dst].push((src, t.payload));
                    }
                }
            }
        }
        self.charge_pairs(phase, &per_pair_bytes);
        for (src, dst, bytes, kind) in faulted {
            self.trace_event(src, dst, bytes, phase, kind);
        }
        if let Some(plan) = &mut self.fault {
            if plan.reorder() {
                for (dst, ib) in inbox.iter_mut().enumerate() {
                    plan.shuffle_inbox(dst, ib);
                }
            }
        }
        (inbox, receipts)
    }

    /// Charges aggregated per-(src, dst) byte counts to the clocks and
    /// ledger along the configured schedule, tracing each model transfer.
    // aa-lint: allow(AA07, the schedule enumerates src and dst below p and per_pair_bytes is p*p by construction at both call sites)
    fn charge_pairs(&mut self, phase: Phase, per_pair_bytes: &[usize]) {
        let p = self.proc_count();
        match self.mode {
            ExchangeMode::Serialized => {
                for (src, dst) in schedule::serialized_all_to_all(p) {
                    let bytes = per_pair_bytes[src * p + dst];
                    if bytes > 0 {
                        self.clocks
                            .transfer_serialized(src, dst, bytes, &self.params);
                        self.record(phase, bytes);
                        self.trace_transfer(src, dst, bytes, phase);
                    }
                }
            }
            ExchangeMode::RoundBased => {
                for round in schedule::one_factorization(p) {
                    for (a, b) in round {
                        for (src, dst) in [(a, b), (b, a)] {
                            let bytes = per_pair_bytes[src * p + dst];
                            if bytes > 0 {
                                self.clocks
                                    .transfer_concurrent(src, dst, bytes, &self.params);
                                self.record(phase, bytes);
                                self.trace_transfer(src, dst, bytes, phase);
                            }
                        }
                    }
                    self.clocks.barrier();
                }
            }
        }
    }

    /// Binomial-tree broadcast of a `bytes`-byte payload from `root`.
    /// Only the *cost* is simulated; the caller clones the payload itself.
    /// Transfers respect the configured network discipline: under the
    /// papers' serialized schedule every tree edge contends for the single
    /// shared network.
    pub fn broadcast_cost(&mut self, phase: Phase, root: usize, bytes: usize) {
        let p = self.proc_count();
        assert!(root < p);
        for round in schedule::tree_broadcast(p, root) {
            for (src, dst) in round {
                match self.mode {
                    ExchangeMode::Serialized => {
                        self.clocks
                            .transfer_serialized(src, dst, bytes, &self.params);
                    }
                    ExchangeMode::RoundBased => {
                        self.clocks
                            .transfer_concurrent(src, dst, bytes, &self.params);
                    }
                }
                self.record(phase, bytes);
                self.trace_transfer(src, dst, bytes, phase);
            }
        }
    }

    /// Charges one point-to-point transfer of `bytes` from `src` to `dst`
    /// (cost only; the caller moves the payload). Used for out-of-band
    /// control traffic such as shipping a checkpoint to a replacement rank.
    pub fn point_to_point_cost(&mut self, phase: Phase, src: usize, dst: usize, bytes: usize) {
        let p = self.proc_count();
        assert!(src < p && dst < p && src != dst);
        match self.mode {
            ExchangeMode::Serialized => {
                self.clocks
                    .transfer_serialized(src, dst, bytes, &self.params);
            }
            ExchangeMode::RoundBased => {
                self.clocks
                    .transfer_concurrent(src, dst, bytes, &self.params);
            }
        }
        self.record(phase, bytes);
        self.trace_transfer(src, dst, bytes, phase);
    }

    /// Books already-charged transfers as failure-detector heartbeats in the
    /// ledger's heartbeat counters (the transfers themselves go through the
    /// normal exchange path and are charged there).
    pub fn note_heartbeats(&mut self, phase: Phase, messages: u64, bytes: u64) {
        self.ledger.record_heartbeat(phase, messages, bytes);
    }

    /// Barrier: synchronizes all virtual clocks (cost only).
    pub fn barrier(&mut self) {
        self.clocks.barrier();
    }

    /// Logical-or all-reduce of per-processor flags (the papers' "no more
    /// updates in any processor" termination test). Charges a tree gather +
    /// broadcast of one-byte flags and synchronizes clocks.
    pub fn all_reduce_or(&mut self, phase: Phase, flags: &[bool]) -> bool {
        assert_eq!(flags.len(), self.proc_count());
        // Gather up the tree then broadcast down: 2·(P−1) one-byte messages.
        for round in schedule::tree_broadcast(self.proc_count(), 0) {
            for (src, dst) in round {
                self.clocks.transfer_concurrent(src, dst, 1, &self.params);
                self.clocks.transfer_concurrent(dst, src, 1, &self.params);
                self.record(phase, 2);
            }
        }
        self.clocks.barrier();
        flags.iter().any(|&f| f)
    }

    /// All-reduce over one `f64` per processor with the given combiner
    /// (sum, max, …). Charges a tree gather + broadcast of 8-byte values and
    /// synchronizes clocks.
    pub fn all_reduce_f64<F>(&mut self, phase: Phase, values: &[f64], combine: F) -> f64
    where
        F: Fn(f64, f64) -> f64,
    {
        assert_eq!(values.len(), self.proc_count());
        for round in schedule::tree_broadcast(self.proc_count(), 0) {
            for (src, dst) in round {
                self.clocks.transfer_concurrent(src, dst, 8, &self.params);
                self.clocks.transfer_concurrent(dst, src, 8, &self.params);
                self.record(phase, 16);
            }
        }
        self.clocks.barrier();
        values
            .iter()
            .copied()
            .reduce(&combine)
            // aa-lint: allow(AA01, proc_count is asserted >= 1 at construction so the reduce has at least one element)
            .expect("at least one processor")
    }

    fn record(&mut self, phase: Phase, bytes: usize) {
        self.ledger
            .record_transfer(phase, self.params.message_count(bytes) as u64, bytes as u64);
    }

    fn trace_transfer(&mut self, src: usize, dst: usize, bytes: usize, phase: Phase) {
        self.trace_event(src, dst, bytes, phase, DeliveryKind::Delivered);
    }

    fn trace_event(
        &mut self,
        src: usize,
        dst: usize,
        bytes: usize,
        phase: Phase,
        kind: DeliveryKind,
    ) {
        if let Some(trace) = &mut self.trace {
            let makespan_us = self.clocks.makespan_us();
            trace.push(TraceEvent {
                src,
                dst,
                bytes,
                phase,
                makespan_us,
                kind,
            });
        }
    }

    /// Cluster makespan so far (µs of virtual time).
    pub fn makespan_us(&self) -> f64 {
        self.clocks.makespan_us()
    }

    /// The cost ledger (messages / bytes / compute per phase).
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// Resets clocks and ledger (used by the baseline-restart strategy).
    /// Fault topology (down ranks, straggler scales, crash schedule) is
    /// preserved: a restart does not repair hardware.
    pub fn reset_accounting(&mut self) {
        self.clocks = VirtualClocks::new(self.proc_count());
        self.ledger = CostLedger::new();
        self.rank_compute_us = vec![0.0; self.proc_count()];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(p: usize, mode: ExchangeMode) -> SimCluster {
        SimCluster::new(p, LogPParams::ethernet_1gbe(), mode)
    }

    #[test]
    fn exchange_delivers_payloads() {
        let mut c = cluster(3, ExchangeMode::Serialized);
        let outbox = vec![
            vec![TransferOut {
                dst: 1,
                bytes: 10,
                payload: "a",
            }],
            vec![TransferOut {
                dst: 2,
                bytes: 20,
                payload: "b",
            }],
            vec![
                TransferOut {
                    dst: 0,
                    bytes: 30,
                    payload: "c",
                },
                TransferOut {
                    dst: 1,
                    bytes: 5,
                    payload: "d",
                },
            ],
        ];
        let inbox = c.exchange(Phase::Recombination, outbox);
        assert_eq!(inbox[0], vec![(2, "c")]);
        assert_eq!(inbox[1], vec![(0, "a"), (2, "d")]);
        assert_eq!(inbox[2], vec![(1, "b")]);
        let s = c.ledger().phase(Phase::Recombination);
        assert_eq!(s.bytes, 65);
        assert!(c.makespan_us() > 0.0);
    }

    #[test]
    fn exchange_modes_deliver_identically() {
        for mode in [ExchangeMode::Serialized, ExchangeMode::RoundBased] {
            let mut c = cluster(4, mode);
            let outbox = vec![
                vec![TransferOut {
                    dst: 3,
                    bytes: 8,
                    payload: 1u32,
                }],
                vec![],
                vec![TransferOut {
                    dst: 3,
                    bytes: 8,
                    payload: 2u32,
                }],
                vec![],
            ];
            let inbox = c.exchange(Phase::Recombination, outbox);
            let mut got = inbox[3].clone();
            got.sort_unstable();
            assert_eq!(got, vec![(0, 1u32), (2, 2u32)], "{mode:?}");
        }
    }

    #[test]
    fn serialized_costs_more_than_round_based_for_dense_exchange() {
        let dense_outbox = |p: usize| -> Vec<Vec<TransferOut<()>>> {
            (0..p)
                .map(|src| {
                    (0..p)
                        .filter(|&d| d != src)
                        .map(|dst| TransferOut {
                            dst,
                            bytes: 100_000,
                            payload: (),
                        })
                        .collect()
                })
                .collect()
        };
        let mut ser = cluster(8, ExchangeMode::Serialized);
        ser.exchange(Phase::Recombination, dense_outbox(8));
        let mut rb = cluster(8, ExchangeMode::RoundBased);
        rb.exchange(Phase::Recombination, dense_outbox(8));
        assert!(
            ser.makespan_us() > 2.0 * rb.makespan_us(),
            "serialized {} vs round-based {}",
            ser.makespan_us(),
            rb.makespan_us()
        );
    }

    #[test]
    #[should_panic(expected = "self-send")]
    fn self_send_rejected() {
        let mut c = cluster(2, ExchangeMode::Serialized);
        c.exchange(
            Phase::Recombination,
            vec![
                vec![TransferOut {
                    dst: 0,
                    bytes: 1,
                    payload: (),
                }],
                vec![],
            ],
        );
    }

    #[test]
    fn broadcast_cost_charges_p_minus_1_messages() {
        let mut c = cluster(8, ExchangeMode::Serialized);
        c.broadcast_cost(Phase::DynamicUpdate, 3, 500);
        let s = c.ledger().phase(Phase::DynamicUpdate);
        assert_eq!(s.messages, 7);
        assert_eq!(s.bytes, 7 * 500);
    }

    #[test]
    fn all_reduce_or_semantics() {
        let mut c = cluster(5, ExchangeMode::Serialized);
        assert!(!c.all_reduce_or(Phase::Recombination, &[false; 5]));
        assert!(c.all_reduce_or(Phase::Recombination, &[false, false, true, false, false]));
    }

    #[test]
    fn compute_charges_clock_and_ledger() {
        let mut c = cluster(2, ExchangeMode::Serialized);
        c.compute_modeled(1, Phase::InitialApproximation, 250.0);
        assert_eq!(c.makespan_us(), 250.0);
        assert_eq!(
            c.ledger().phase(Phase::InitialApproximation).compute_us,
            250.0
        );
        c.compute_measured(0, Phase::InitialApproximation, Duration::from_micros(100));
        assert!((c.ledger().phase(Phase::InitialApproximation).compute_us - 350.0).abs() < 1e-6);
    }

    #[test]
    fn reset_accounting_zeroes_state() {
        let mut c = cluster(2, ExchangeMode::Serialized);
        c.compute_modeled(0, Phase::Recombination, 10.0);
        c.reset_accounting();
        assert_eq!(c.makespan_us(), 0.0);
        assert_eq!(c.ledger().totals().compute_us, 0.0);
    }

    #[test]
    fn trace_records_transfers_in_time_order() {
        let mut c = cluster(3, ExchangeMode::Serialized);
        c.enable_trace();
        c.exchange(
            Phase::Recombination,
            vec![
                vec![TransferOut {
                    dst: 1,
                    bytes: 100,
                    payload: (),
                }],
                vec![TransferOut {
                    dst: 2,
                    bytes: 200,
                    payload: (),
                }],
                vec![],
            ],
        );
        c.broadcast_cost(Phase::DynamicUpdate, 0, 50);
        let trace = c.take_trace();
        assert_eq!(
            trace.len(),
            2 + 2,
            "two exchange transfers + two tree edges"
        );
        for pair in trace.windows(2) {
            assert!(pair[1].makespan_us >= pair[0].makespan_us);
        }
        assert!(trace.iter().any(|e| e.phase == Phase::DynamicUpdate));
        // Taking the trace disables recording.
        c.broadcast_cost(Phase::DynamicUpdate, 0, 50);
        assert!(c.take_trace().is_empty());
    }

    #[test]
    fn receipts_without_fault_plan_match_plain_exchange() {
        let outbox = || {
            vec![
                vec![TransferOut {
                    dst: 1,
                    bytes: 10,
                    payload: "a",
                }],
                vec![TransferOut {
                    dst: 2,
                    bytes: 20,
                    payload: "b",
                }],
                vec![
                    TransferOut {
                        dst: 0,
                        bytes: 30,
                        payload: "c",
                    },
                    TransferOut {
                        dst: 1,
                        bytes: 5,
                        payload: "d",
                    },
                ],
            ]
        };
        let mut plain = cluster(3, ExchangeMode::Serialized);
        let expect = plain.exchange(Phase::Recombination, outbox());
        let mut faulty = cluster(3, ExchangeMode::Serialized);
        let (inbox, receipts) = faulty.exchange_with_receipts(Phase::Recombination, outbox());
        assert_eq!(inbox, expect);
        assert_eq!(receipts, vec![vec![true], vec![true], vec![true, true]]);
        assert_eq!(plain.ledger(), faulty.ledger());
        assert_eq!(plain.makespan_us(), faulty.makespan_us());
    }

    #[test]
    fn dropped_transfer_still_charged_and_counted() {
        let mut c = cluster(2, ExchangeMode::Serialized);
        let mut plan = crate::FaultPlan::new(5, 0.0, 0.0);
        plan.set_link(0, 1, crate::LinkFaults::new(1.0, 0.0));
        c.set_fault_plan(Some(plan));
        c.enable_trace();
        let (inbox, receipts) = c.exchange_with_receipts(
            Phase::Recombination,
            vec![
                vec![TransferOut {
                    dst: 1,
                    bytes: 40,
                    payload: 7u32,
                }],
                vec![TransferOut {
                    dst: 0,
                    bytes: 24,
                    payload: 9u32,
                }],
            ],
        );
        assert!(inbox[1].is_empty(), "dropped payload must not arrive");
        assert_eq!(inbox[0], vec![(1, 9u32)]);
        assert_eq!(receipts, vec![vec![false], vec![true]]);
        let s = c.ledger().phase(Phase::Recombination);
        assert_eq!(s.bytes, 64, "dropped bytes still occupy the network");
        assert_eq!(s.dropped_bytes, 40);
        assert!(s.dropped_messages >= 1);
        assert_eq!(s.dup_bytes, 0);
        let trace = c.take_trace();
        assert!(trace
            .iter()
            .any(|e| e.kind == DeliveryKind::Dropped && e.src == 0 && e.bytes == 40));
        for pair in trace.windows(2) {
            assert!(pair[1].makespan_us >= pair[0].makespan_us);
        }
    }

    #[test]
    fn duplicated_transfer_arrives_twice_and_charges_twice() {
        let mut c = cluster(2, ExchangeMode::Serialized);
        let plan = crate::FaultPlan::new(5, 0.0, 1.0).with_reorder(false);
        c.set_fault_plan(Some(plan));
        c.enable_trace();
        let (inbox, receipts) = c.exchange_with_receipts(
            Phase::Recombination,
            vec![
                vec![TransferOut {
                    dst: 1,
                    bytes: 16,
                    payload: "x",
                }],
                vec![],
            ],
        );
        assert_eq!(inbox[1], vec![(0, "x"), (0, "x")]);
        assert_eq!(receipts[0], vec![true]);
        let s = c.ledger().phase(Phase::Recombination);
        assert_eq!(s.bytes, 32, "both copies ride the network");
        assert_eq!(s.dup_bytes, 16);
        assert!(c
            .take_trace()
            .iter()
            .any(|e| e.kind == DeliveryKind::Duplicate));
    }

    #[test]
    fn faulted_exchange_replays_deterministically() {
        let run = |seed: u64| {
            let mut c = cluster(4, ExchangeMode::Serialized);
            c.set_fault_plan(Some(crate::FaultPlan::new(seed, 0.4, 0.2)));
            let mut all_receipts = Vec::new();
            let mut all_inboxes = Vec::new();
            for step in 0..20u32 {
                let outbox: Vec<Vec<TransferOut<u32>>> = (0..4)
                    .map(|src| {
                        (0..4)
                            .filter(|&d| d != src)
                            .map(|dst| TransferOut {
                                dst,
                                bytes: 8,
                                payload: step,
                            })
                            .collect()
                    })
                    .collect();
                let (inbox, receipts) = c.exchange_with_receipts(Phase::Recombination, outbox);
                all_inboxes.push(inbox);
                all_receipts.push(receipts);
            }
            (all_inboxes, all_receipts, c.makespan_us())
        };
        assert_eq!(run(77), run(77));
        assert_ne!(run(77).1, run(78).1, "different seeds fault differently");
    }

    #[test]
    fn transfers_to_a_down_rank_are_nacked_and_charged() {
        let mut c = cluster(3, ExchangeMode::Serialized);
        c.set_fault_plan(Some(crate::FaultPlan::new(0, 0.0, 0.0).with_reorder(false)));
        c.mark_down(1);
        c.enable_trace();
        let (inbox, receipts) = c.exchange_with_receipts(
            Phase::Recombination,
            vec![
                vec![
                    TransferOut {
                        dst: 1,
                        bytes: 48,
                        payload: "dead",
                    },
                    TransferOut {
                        dst: 2,
                        bytes: 16,
                        payload: "live",
                    },
                ],
                vec![],
                vec![],
            ],
        );
        assert!(inbox[1].is_empty(), "a down rank receives nothing");
        assert_eq!(inbox[2], vec![(0, "live")]);
        assert_eq!(receipts[0], vec![false, true]);
        let s = c.ledger().phase(Phase::Recombination);
        assert_eq!(s.bytes, 64, "the lost transfer still rode the network");
        assert_eq!(s.dropped_bytes, 48);
        assert!(c
            .take_trace()
            .iter()
            .any(|e| e.kind == DeliveryKind::LostDown && e.dst == 1 && e.bytes == 48));
        // Recovery brings the rank back.
        c.mark_up(1);
        assert_eq!(c.down_ranks(), Vec::<usize>::new());
        let (inbox, receipts) = c.exchange_with_receipts(
            Phase::Recombination,
            vec![
                vec![TransferOut {
                    dst: 1,
                    bytes: 48,
                    payload: "retry",
                }],
                vec![],
                vec![],
            ],
        );
        assert_eq!(inbox[1], vec![(0, "retry")]);
        assert_eq!(receipts[0], vec![true]);
    }

    #[test]
    fn scheduled_crashes_fire_once_and_spare_the_last_survivor() {
        let mut c = cluster(2, ExchangeMode::Serialized);
        let plan = crate::FaultPlan::new(0, 0.0, 0.0)
            .with_crash(3, 0)
            .with_crash(5, 1);
        c.set_fault_plan(Some(plan));
        assert_eq!(c.fire_crashes_due(2), Vec::<usize>::new());
        assert_eq!(c.fire_crashes_due(3), vec![0]);
        assert!(c.is_down(0));
        // Firing the same step again is idempotent.
        assert_eq!(c.fire_crashes_due(3), Vec::<usize>::new());
        // Rank 1 is the last survivor: its crash is skipped.
        assert_eq!(c.fire_crashes_due(10), Vec::<usize>::new());
        assert_eq!(c.live_count(), 1);
        // After recovery, late crashes do not re-fire.
        c.mark_up(0);
        assert_eq!(c.fire_crashes_due(11), Vec::<usize>::new());
    }

    #[test]
    fn straggler_scale_inflates_compute_and_clock() {
        let mut c = cluster(2, ExchangeMode::Serialized);
        c.set_fault_plan(Some(
            crate::FaultPlan::new(0, 0.0, 0.0).with_straggler(1, 10.0),
        ));
        c.compute_modeled(0, Phase::Recombination, 100.0);
        c.compute_modeled(1, Phase::Recombination, 100.0);
        assert_eq!(c.compute_us_by_rank(), &[100.0, 1000.0]);
        assert_eq!(c.proc_time_us(1), 1000.0);
        assert_eq!(c.makespan_us(), 1000.0, "the straggler drags the makespan");
        // Removing the plan resets the scale.
        c.set_fault_plan(None);
        c.compute_modeled(1, Phase::Recombination, 50.0);
        assert_eq!(c.compute_us_by_rank()[1], 1050.0);
    }

    #[test]
    fn point_to_point_cost_charges_one_transfer() {
        let mut c = cluster(4, ExchangeMode::Serialized);
        c.point_to_point_cost(Phase::Recovery, 0, 2, 1000);
        let s = c.ledger().phase(Phase::Recovery);
        assert_eq!(s.bytes, 1000);
        assert!(c.makespan_us() > 0.0);
    }

    #[test]
    fn single_proc_cluster_is_degenerate_but_valid() {
        let mut c = cluster(1, ExchangeMode::Serialized);
        let inbox = c.exchange::<()>(Phase::Recombination, vec![vec![]]);
        assert_eq!(inbox.len(), 1);
        assert!(inbox[0].is_empty());
        assert!(!c.all_reduce_or(Phase::Recombination, &[false]));
    }
}
