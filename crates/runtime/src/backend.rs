//! Execution-backend selection: the deterministic simulator vs real threads.
//!
//! [`Cluster`] is the handle `aa-core`'s engine drives. It dispatches every
//! collective, charge and fault operation to either the in-process
//! [`SimCluster`] oracle or the [`ThreadCluster`] (real OS threads + bounded
//! channels) without the engine knowing which one it has. Both backends
//! funnel all accounting through the same `SimCluster` core, so a run is
//! bit-identical across backends given the same seed — the property the
//! cross-backend differential suite in `tests/differential.rs` locks down.
//!
//! [`ExecutionBackend`] is the non-generic control surface shared by both
//! implementations (the generic exchanges can't be trait methods because
//! payload types are chosen by the algorithm layer).

use crate::cluster::{ExchangeReceipts, SimCluster, TraceEvent, TransferOut};
use crate::threads::ThreadCluster;
use crate::{ExchangeMode, FaultPlan};
use aa_logp::{CostLedger, LogPParams, Phase};
use aa_obs::Stopwatch;
use std::time::Duration;

/// Which execution backend runs the per-rank work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Deterministic superstep simulator (the correctness oracle; default).
    Sim,
    /// Real OS threads + bounded channels over the simulator's accounting.
    Threads,
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BackendKind::Sim => "sim",
            BackendKind::Threads => "threads",
        })
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sim" => Ok(BackendKind::Sim),
            "threads" => Ok(BackendKind::Threads),
            other => Err(format!("unknown backend '{other}' (expected sim|threads)")),
        }
    }
}

/// The non-generic control surface every execution backend exposes; the
/// generic data-plane calls (exchanges, reductions, per-rank stages) live on
/// [`Cluster`] itself because their payload types are the algorithm layer's.
pub trait ExecutionBackend {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;
    /// Number of virtual processors.
    fn proc_count(&self) -> usize;
    /// Whether `rank` is currently fail-stopped.
    fn is_down(&self, rank: usize) -> bool;
    /// Number of live ranks.
    fn live_count(&self) -> usize;
    /// Synchronizes all virtual clocks.
    fn barrier(&mut self);
    /// Cluster makespan so far (µs of virtual time).
    fn makespan_us(&self) -> f64;
}

impl ExecutionBackend for SimCluster {
    fn kind(&self) -> BackendKind {
        BackendKind::Sim
    }
    fn proc_count(&self) -> usize {
        SimCluster::proc_count(self)
    }
    fn is_down(&self, rank: usize) -> bool {
        SimCluster::is_down(self, rank)
    }
    fn live_count(&self) -> usize {
        SimCluster::live_count(self)
    }
    fn barrier(&mut self) {
        SimCluster::barrier(self)
    }
    fn makespan_us(&self) -> f64 {
        SimCluster::makespan_us(self)
    }
}

impl ExecutionBackend for ThreadCluster {
    fn kind(&self) -> BackendKind {
        BackendKind::Threads
    }
    fn proc_count(&self) -> usize {
        self.sim().proc_count()
    }
    fn is_down(&self, rank: usize) -> bool {
        self.sim().is_down(rank)
    }
    fn live_count(&self) -> usize {
        self.sim().live_count()
    }
    fn barrier(&mut self) {
        self.sim_mut().barrier()
    }
    fn makespan_us(&self) -> f64 {
        self.sim().makespan_us()
    }
}

/// The execution backend handle the engine drives. Mirrors the full
/// [`SimCluster`] API; only the exchange judge and the per-rank compute
/// stages differ between variants — all accounting goes through the shared
/// simulator core either way.
#[derive(Debug)]
pub enum Cluster {
    /// Deterministic superstep simulator.
    Sim(SimCluster),
    /// Real OS threads + bounded channels.
    Threads(ThreadCluster),
}

impl Cluster {
    /// Builds a backend of the given kind. `threads` is the worker cap for
    /// the threaded backend (`0` = one worker per rank) and must be 0 or 1
    /// for the simulator, which executes strictly sequentially — asking the
    /// sim for parallelism is a configuration error that must fail loudly,
    /// not silently run on one core.
    pub fn build(
        kind: BackendKind,
        p: usize,
        params: LogPParams,
        mode: ExchangeMode,
        threads: usize,
    ) -> Result<Self, String> {
        match kind {
            BackendKind::Sim => {
                if threads > 1 {
                    return Err(format!(
                        "backend 'sim' is single-threaded: --threads {threads} would silently \
                         run sequentially (the vendored rayon stub has no real thread pool); \
                         use --backend threads for real parallelism"
                    ));
                }
                Ok(Cluster::Sim(SimCluster::new(p, params, mode)))
            }
            BackendKind::Threads => {
                ThreadCluster::new(p, params, mode, threads).map(Cluster::Threads)
            }
        }
    }

    /// Which backend this is.
    pub fn kind(&self) -> BackendKind {
        match self {
            Cluster::Sim(_) => BackendKind::Sim,
            Cluster::Threads(_) => BackendKind::Threads,
        }
    }

    /// The simulator core carrying clocks, ledger and fault state.
    pub fn sim(&self) -> &SimCluster {
        match self {
            Cluster::Sim(c) => c,
            Cluster::Threads(t) => t.sim(),
        }
    }

    /// Mutable access to the simulator core.
    pub fn sim_mut(&mut self) -> &mut SimCluster {
        match self {
            Cluster::Sim(c) => c,
            Cluster::Threads(t) => t.sim_mut(),
        }
    }

    /// Like [`SimCluster::exchange_with_receipts`]: the simulator judges
    /// sequentially, the threaded backend judges per sender on its worker
    /// pool; settlement is the shared simulator path either way.
    pub fn exchange_with_receipts<T: Clone + Send>(
        &mut self,
        phase: Phase,
        outbox: Vec<Vec<TransferOut<T>>>,
    ) -> ExchangeReceipts<T> {
        match self {
            Cluster::Sim(c) => c.exchange_with_receipts(phase, outbox),
            Cluster::Threads(t) => t.exchange_with_receipts(phase, outbox),
        }
    }

    /// Runs `f` once per rank with exclusive access to that rank's state
    /// slot, charging each rank's measured wall time to its virtual clock.
    /// Ranks with `skip[rank]` set contribute `R::default()` and no charge.
    /// The simulator runs ranks sequentially in order; the threaded backend
    /// fans out to its worker pool and merges results (and charges) back in
    /// rank order, so downstream state never observes completion order.
    pub fn run_on_ranks<S, I, R, F>(
        &mut self,
        phase: Phase,
        states: &mut [S],
        inputs: Vec<I>,
        skip: &[bool],
        f: F,
    ) -> Vec<R>
    where
        S: Send,
        I: Send,
        R: Default + Send,
        F: Fn(usize, &mut S, I) -> R + Sync,
    {
        match self {
            Cluster::Sim(c) => {
                assert_eq!(inputs.len(), states.len(), "one input per rank");
                assert_eq!(skip.len(), states.len(), "one skip flag per rank");
                states
                    .iter_mut()
                    .zip(inputs)
                    .enumerate()
                    .map(|(rank, (state, input))| {
                        // aa-lint: allow(AA07, skip is asserted to states.len() above and rank enumerates states)
                        if skip[rank] {
                            return R::default();
                        }
                        let t = Stopwatch::start();
                        let r = f(rank, state, input);
                        c.compute_measured(rank, phase, t.elapsed());
                        r
                    })
                    .collect()
            }
            Cluster::Threads(t) => t.run_on_ranks(phase, states, inputs, skip, f),
        }
    }

    // ----- delegated SimCluster surface ---------------------------------

    /// See [`SimCluster::set_fault_plan`].
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.sim_mut().set_fault_plan(plan)
    }

    /// See [`SimCluster::fault_plan`].
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.sim().fault_plan()
    }

    /// See [`SimCluster::fault_plan_mut`].
    pub fn fault_plan_mut(&mut self) -> Option<&mut FaultPlan> {
        self.sim_mut().fault_plan_mut()
    }

    /// See [`SimCluster::refresh_stragglers`].
    pub fn refresh_stragglers(&mut self) {
        self.sim_mut().refresh_stragglers()
    }

    /// See [`SimCluster::fire_crashes_due`].
    pub fn fire_crashes_due(&mut self, step: u64) -> Vec<usize> {
        self.sim_mut().fire_crashes_due(step)
    }

    /// See [`SimCluster::is_down`].
    pub fn is_down(&self, rank: usize) -> bool {
        self.sim().is_down(rank)
    }

    /// See [`SimCluster::down_ranks`].
    pub fn down_ranks(&self) -> Vec<usize> {
        self.sim().down_ranks()
    }

    /// See [`SimCluster::live_count`].
    pub fn live_count(&self) -> usize {
        self.sim().live_count()
    }

    /// See [`SimCluster::mark_down`].
    pub fn mark_down(&mut self, rank: usize) {
        self.sim_mut().mark_down(rank)
    }

    /// See [`SimCluster::mark_up`].
    pub fn mark_up(&mut self, rank: usize) {
        self.sim_mut().mark_up(rank)
    }

    /// See [`SimCluster::compute_us_by_rank`].
    pub fn compute_us_by_rank(&self) -> &[f64] {
        self.sim().compute_us_by_rank()
    }

    /// See [`SimCluster::proc_time_us`].
    pub fn proc_time_us(&self, p: usize) -> f64 {
        self.sim().proc_time_us(p)
    }

    /// See [`SimCluster::set_compute_scale`].
    pub fn set_compute_scale(&mut self, scale: f64) {
        self.sim_mut().set_compute_scale(scale)
    }

    /// See [`SimCluster::enable_trace`].
    pub fn enable_trace(&mut self) {
        self.sim_mut().enable_trace()
    }

    /// See [`SimCluster::take_trace`].
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.sim_mut().take_trace()
    }

    /// See [`SimCluster::proc_count`].
    pub fn proc_count(&self) -> usize {
        self.sim().proc_count()
    }

    /// See [`SimCluster::params`].
    pub fn params(&self) -> &LogPParams {
        self.sim().params()
    }

    /// See [`SimCluster::compute_measured`].
    pub fn compute_measured(&mut self, p: usize, phase: Phase, elapsed: Duration) {
        self.sim_mut().compute_measured(p, phase, elapsed)
    }

    /// See [`SimCluster::compute_modeled`].
    pub fn compute_modeled(&mut self, p: usize, phase: Phase, us: f64) {
        self.sim_mut().compute_modeled(p, phase, us)
    }

    /// See [`SimCluster::exchange`]. Cost-only collective: both backends run
    /// it on the coordinator (there is no per-rank work to parallelize).
    pub fn exchange<T>(
        &mut self,
        phase: Phase,
        outbox: Vec<Vec<TransferOut<T>>>,
    ) -> Vec<Vec<(usize, T)>> {
        self.sim_mut().exchange(phase, outbox)
    }

    /// See [`SimCluster::broadcast_cost`].
    pub fn broadcast_cost(&mut self, phase: Phase, root: usize, bytes: usize) {
        self.sim_mut().broadcast_cost(phase, root, bytes)
    }

    /// See [`SimCluster::point_to_point_cost`].
    pub fn point_to_point_cost(&mut self, phase: Phase, src: usize, dst: usize, bytes: usize) {
        self.sim_mut().point_to_point_cost(phase, src, dst, bytes)
    }

    /// See [`SimCluster::note_heartbeats`].
    pub fn note_heartbeats(&mut self, phase: Phase, messages: u64, bytes: u64) {
        self.sim_mut().note_heartbeats(phase, messages, bytes)
    }

    /// See [`SimCluster::barrier`].
    pub fn barrier(&mut self) {
        self.sim_mut().barrier()
    }

    /// See [`SimCluster::all_reduce_or`].
    pub fn all_reduce_or(&mut self, phase: Phase, flags: &[bool]) -> bool {
        self.sim_mut().all_reduce_or(phase, flags)
    }

    /// See [`SimCluster::all_reduce_f64`].
    pub fn all_reduce_f64<F>(&mut self, phase: Phase, values: &[f64], combine: F) -> f64
    where
        F: Fn(f64, f64) -> f64,
    {
        self.sim_mut().all_reduce_f64(phase, values, combine)
    }

    /// See [`SimCluster::makespan_us`].
    pub fn makespan_us(&self) -> f64 {
        self.sim().makespan_us()
    }

    /// See [`SimCluster::ledger`].
    pub fn ledger(&self) -> &CostLedger {
        self.sim().ledger()
    }

    /// See [`SimCluster::reset_accounting`].
    pub fn reset_accounting(&mut self) {
        self.sim_mut().reset_accounting()
    }
}

impl ExecutionBackend for Cluster {
    fn kind(&self) -> BackendKind {
        Cluster::kind(self)
    }
    fn proc_count(&self) -> usize {
        Cluster::proc_count(self)
    }
    fn is_down(&self, rank: usize) -> bool {
        Cluster::is_down(self, rank)
    }
    fn live_count(&self) -> usize {
        Cluster::live_count(self)
    }
    fn barrier(&mut self) {
        Cluster::barrier(self)
    }
    fn makespan_us(&self) -> f64 {
        Cluster::makespan_us(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_kind_round_trips_through_strings() {
        for kind in [BackendKind::Sim, BackendKind::Threads] {
            assert_eq!(kind.to_string().parse::<BackendKind>(), Ok(kind));
        }
        assert!("fibers".parse::<BackendKind>().is_err());
    }

    #[test]
    fn sim_backend_rejects_parallelism_loudly() {
        let err = Cluster::build(
            BackendKind::Sim,
            4,
            LogPParams::ethernet_1gbe(),
            ExchangeMode::Serialized,
            8,
        )
        .unwrap_err();
        assert!(err.contains("single-threaded"), "unhelpful error: {err}");
        // threads <= 1 is the sequential contract the sim satisfies.
        for threads in [0, 1] {
            assert!(Cluster::build(
                BackendKind::Sim,
                4,
                LogPParams::ethernet_1gbe(),
                ExchangeMode::Serialized,
                threads,
            )
            .is_ok());
        }
    }

    #[test]
    fn both_backends_expose_the_trait_surface() {
        let mut backends = vec![
            Cluster::build(
                BackendKind::Sim,
                3,
                LogPParams::ethernet_1gbe(),
                ExchangeMode::Serialized,
                0,
            )
            .unwrap(),
            Cluster::build(
                BackendKind::Threads,
                3,
                LogPParams::ethernet_1gbe(),
                ExchangeMode::Serialized,
                2,
            )
            .unwrap(),
        ];
        for cluster in &mut backends {
            let b: &mut dyn ExecutionBackend = cluster;
            assert_eq!(b.proc_count(), 3);
            assert_eq!(b.live_count(), 3);
            assert!(!b.is_down(1));
            b.barrier();
            assert_eq!(b.makespan_us(), 0.0);
        }
        assert_eq!(backends[0].kind(), BackendKind::Sim);
        assert_eq!(backends[1].kind(), BackendKind::Threads);
    }
}
