//! Heartbeat/timeout failure detection and straggler flagging.
//!
//! The detector is deliberately dumb and local: it never talks to the
//! network itself. The protocol layer feeds it *evidence* — "I heard from
//! rank r at step s" (an inbound message or a positive delivery receipt) and
//! "this step, each rank charged this much compute" — and reads back
//! per-rank verdicts. Crash suspicion is the classic heartbeat timeout: a
//! rank that has produced no evidence of life for more than `timeout`
//! consecutive recombination steps is suspected fail-stopped. Straggler
//! flagging compares each rank's per-step compute against the live median;
//! a rank that exceeds `straggler_factor ×` the median (and an absolute
//! floor, to ignore measurement noise on tiny graphs) for
//! `straggler_patience` consecutive steps is flagged.
//!
//! Steps, not wall seconds, drive the timeout: the simulation's notion of
//! time is the LogP virtual clock, which advances per recombination step, so
//! "k silent steps" is the faithful analogue of "k missed heartbeat
//! intervals" in a real deployment.

/// Per-rank health verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankHealth {
    /// Evidence of life within the timeout, compute within bounds.
    Healthy,
    /// Alive but repeatedly exceeding the straggler threshold.
    Straggling,
    /// No evidence of life for more than the timeout: presumed crashed.
    Suspected,
    /// Confirmed down (the supervisor acted on the suspicion).
    Down,
}

impl std::fmt::Display for RankHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RankHealth::Healthy => "healthy",
            RankHealth::Straggling => "straggling",
            RankHealth::Suspected => "suspected",
            RankHealth::Down => "down",
        })
    }
}

/// Heartbeat-timeout crash detector + median-based straggler detector.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    timeout: u64,
    straggler_factor: f64,
    straggler_floor_us: f64,
    straggler_patience: u32,
    /// Last step at which each rank produced evidence of life.
    last_heard: Vec<u64>,
    /// Consecutive steps each rank exceeded the straggler threshold.
    slow_streak: Vec<u32>,
    down: Vec<bool>,
    straggling: Vec<bool>,
}

impl FailureDetector {
    /// A detector for `p` ranks. `timeout` is in recombination steps;
    /// `straggler_factor` is the multiple of the live median per-step
    /// compute a rank must exceed (for `straggler_patience` consecutive
    /// steps, and above `straggler_floor_us`) to be flagged.
    pub fn new(
        p: usize,
        timeout: u64,
        straggler_factor: f64,
        straggler_floor_us: f64,
        straggler_patience: u32,
    ) -> Self {
        assert!(p >= 1);
        assert!(timeout >= 1, "a zero timeout would suspect everyone");
        assert!(straggler_factor > 1.0 && straggler_patience >= 1);
        FailureDetector {
            timeout,
            straggler_factor,
            straggler_floor_us,
            straggler_patience,
            last_heard: vec![0; p],
            slow_streak: vec![0; p],
            down: vec![false; p],
            straggling: vec![false; p],
        }
    }

    /// The configured crash timeout (steps).
    pub fn timeout(&self) -> u64 {
        self.timeout
    }

    /// Records evidence that `rank` was alive at `step`: an inbound message
    /// from it, or a positive delivery receipt for a transfer sent to it.
    pub fn observe_contact(&mut self, rank: usize, step: u64) {
        self.last_heard[rank] = self.last_heard[rank].max(step);
    }

    /// Feeds one step's per-rank compute charges (µs, already accumulated
    /// deltas) to the straggler detector. `skip[r]` masks ranks that should
    /// not participate this step (down ranks, the step's crash victims).
    pub fn observe_step_compute(&mut self, per_rank_us: &[f64], skip: &[bool]) {
        let mut live: Vec<f64> = per_rank_us
            .iter()
            .zip(skip)
            .filter(|&(_, &s)| !s)
            .map(|(&us, _)| us)
            .collect();
        if live.len() < 2 {
            return; // a median of one rank flags nothing
        }
        live.sort_by(f64::total_cmp);
        // Lower median: with an even live count the upper median could be
        // the straggler itself, inflating its own threshold.
        let median = live[(live.len() - 1) / 2];
        let threshold = (median * self.straggler_factor).max(self.straggler_floor_us);
        for (r, (&us, &s)) in per_rank_us.iter().zip(skip).enumerate() {
            if s {
                self.slow_streak[r] = 0;
                continue;
            }
            if us > threshold {
                self.slow_streak[r] += 1;
            } else {
                self.slow_streak[r] = 0;
                self.straggling[r] = false;
            }
            if self.slow_streak[r] >= self.straggler_patience {
                self.straggling[r] = true;
            }
        }
    }

    /// Ranks whose silence has exceeded the timeout at `now` and that are
    /// not already marked down — the supervisor should recover these.
    pub fn suspects(&self, now: u64) -> Vec<usize> {
        (0..self.last_heard.len())
            .filter(|&r| !self.down[r] && now.saturating_sub(self.last_heard[r]) > self.timeout)
            .collect()
    }

    /// Confirms `rank` as down (stops it from being re-suspected while the
    /// supervisor recovers it).
    pub fn mark_down(&mut self, rank: usize) {
        self.down[rank] = true;
    }

    /// Marks `rank` recovered at `step`: its heartbeat clock restarts and
    /// any straggler streak is cleared.
    pub fn mark_up(&mut self, rank: usize, step: u64) {
        self.down[rank] = false;
        self.last_heard[rank] = step;
        self.slow_streak[rank] = 0;
        self.straggling[rank] = false;
    }

    /// The current verdict for `rank` as of step `now`.
    pub fn health(&self, rank: usize, now: u64) -> RankHealth {
        if self.down[rank] {
            RankHealth::Down
        } else if now.saturating_sub(self.last_heard[rank]) > self.timeout {
            RankHealth::Suspected
        } else if self.straggling[rank] {
            RankHealth::Straggling
        } else {
            RankHealth::Healthy
        }
    }

    /// Last step at which `rank` showed evidence of life.
    pub fn last_heard(&self, rank: usize) -> u64 {
        self.last_heard[rank]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silence_beyond_timeout_is_suspected() {
        let mut d = FailureDetector::new(3, 2, 4.0, 0.0, 2);
        for step in 1..=5 {
            d.observe_contact(0, step);
            d.observe_contact(2, step);
        }
        d.observe_contact(1, 3); // rank 1 goes silent after step 3
        assert_eq!(d.suspects(5), Vec::<usize>::new(), "within timeout");
        assert_eq!(d.suspects(6), vec![1], "3 silent steps > timeout 2");
        assert_eq!(d.health(1, 6), RankHealth::Suspected);
        assert_eq!(d.health(0, 6), RankHealth::Healthy);
    }

    #[test]
    fn down_ranks_are_not_re_suspected_until_marked_up() {
        let mut d = FailureDetector::new(2, 1, 4.0, 0.0, 2);
        for step in 1..=14 {
            d.observe_contact(0, step); // rank 0 stays chatty throughout
        }
        assert_eq!(d.suspects(12), vec![1]);
        d.mark_down(1);
        assert_eq!(d.suspects(12), Vec::<usize>::new());
        assert_eq!(d.health(1, 12), RankHealth::Down);
        d.mark_up(1, 12);
        assert_eq!(d.health(1, 12), RankHealth::Healthy);
        assert_eq!(d.suspects(14), vec![1], "the clock restarted at step 12");
    }

    #[test]
    fn straggler_needs_patience_and_clears_on_recovery() {
        let mut d = FailureDetector::new(4, 5, 4.0, 0.0, 3);
        let skip = [false; 4];
        // Rank 2 charges 10× the median.
        for _ in 0..2 {
            d.observe_step_compute(&[10.0, 10.0, 100.0, 10.0], &skip);
        }
        assert_eq!(d.health(2, 0), RankHealth::Healthy, "patience not met");
        d.observe_step_compute(&[10.0, 10.0, 100.0, 10.0], &skip);
        assert_eq!(d.health(2, 0), RankHealth::Straggling);
        // One normal step clears the flag.
        d.observe_step_compute(&[10.0, 10.0, 10.0, 10.0], &skip);
        assert_eq!(d.health(2, 0), RankHealth::Healthy);
    }

    #[test]
    fn straggler_floor_masks_noise() {
        let mut d = FailureDetector::new(3, 5, 2.0, 50.0, 1);
        // 10× the median but under the 50µs floor: noise, not a straggler.
        d.observe_step_compute(&[1.0, 1.0, 10.0], &[false; 3]);
        assert_eq!(d.health(2, 0), RankHealth::Healthy);
        d.observe_step_compute(&[10.0, 10.0, 200.0], &[false; 3]);
        assert_eq!(d.health(2, 0), RankHealth::Straggling);
    }

    #[test]
    fn skipped_ranks_do_not_distort_the_median() {
        let mut d = FailureDetector::new(3, 5, 2.0, 0.0, 1);
        // Rank 0 is down (skipped) with zero compute; the median comes from
        // ranks 1 and 2 only, so rank 2 at 3× rank 1 is flagged.
        d.observe_step_compute(&[0.0, 10.0, 30.0], &[true, false, false]);
        assert_eq!(d.health(2, 0), RankHealth::Straggling);
        assert_eq!(d.health(0, 100), RankHealth::Suspected, "down, not flagged");
    }
}
