//! The threaded execution backend: real OS threads over the simulator core.
//!
//! [`ThreadCluster`] wraps a [`SimCluster`] and executes the two genuinely
//! parallel stages of every superstep — per-rank compute closures and the
//! per-sender judging of an exchange — on real `std::thread` workers talking
//! to the coordinator over bounded channels. Everything with global effects
//! (virtual clocks, the cost ledger, inbox assembly, trace, reshuffle) stays
//! on the coordinator thread and funnels through the exact same
//! `SimCluster` accounting code, which is what makes the threaded backend
//! oracle-exact against the simulator by construction.
//!
//! Determinism contract (see DESIGN.md §16):
//! - each directed link's fault-decision stream is advanced only by its own
//!   sender, in that sender's submission order, so verdicts are independent
//!   of how sender threads interleave;
//! - worker results are merged into rank-indexed slots and consumed in rank
//!   order 0..P — the merge order at rank boundaries is fixed regardless of
//!   completion order;
//! - measured wall-clock compute feeds only the virtual clocks / straggler
//!   advisories, never control flow or data (the same contract the
//!   simulator's `Stopwatch` usage already obeys).

use crate::cluster::{judge_transfer, ExchangeReceipts, SimCluster, TransferOut, Verdict};
use crate::ExchangeMode;
use aa_logp::{LogPParams, Phase};
use aa_obs::Stopwatch;
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Duration;

/// Whether this host can actually spawn OS threads. The vendored `rayon`
/// stub is silently single-threaded, so backend selection must probe the
/// real `std::thread` machinery and fail loudly instead of quietly running
/// sequentially (ISSUE 9 satellite: no silent downgrade).
pub fn threads_available() -> bool {
    std::thread::Builder::new()
        .name("aa-thread-probe".into())
        .spawn(|| {})
        .map(|handle| handle.join().is_ok())
        .unwrap_or(false)
}

/// A cluster of `P` virtual processors whose per-rank work runs on real OS
/// threads. API-compatible with [`SimCluster`] (it owns one internally);
/// construction fails with a clear error when the host cannot spawn
/// threads.
#[derive(Debug)]
pub struct ThreadCluster {
    sim: SimCluster,
    threads: usize,
}

impl ThreadCluster {
    /// Creates a threaded cluster of `p` processors. `threads` caps the
    /// worker pool per parallel stage (`0` means one worker per rank).
    /// Returns an error when the host cannot spawn OS threads — callers must
    /// surface it rather than fall back to sequential execution silently.
    pub fn new(
        p: usize,
        params: LogPParams,
        mode: ExchangeMode,
        threads: usize,
    ) -> Result<Self, String> {
        if !threads_available() {
            return Err(
                "threads backend unavailable: this host cannot spawn OS threads \
                 (std::thread probe failed); use the sim backend instead"
                    .to_string(),
            );
        }
        Ok(ThreadCluster {
            sim: SimCluster::new(p, params, mode),
            threads,
        })
    }

    /// The simulator core carrying all clocks, ledger and fault state.
    pub fn sim(&self) -> &SimCluster {
        &self.sim
    }

    /// Mutable access to the simulator core.
    pub fn sim_mut(&mut self) -> &mut SimCluster {
        &mut self.sim
    }

    /// Configured worker cap (`0` = one worker per rank).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Workers to use for a `p`-rank stage.
    fn workers_for(&self, p: usize) -> usize {
        let cap = if self.threads == 0 { p } else { self.threads };
        cap.clamp(1, p.max(1))
    }

    /// Like [`SimCluster::exchange_with_receipts`], but judging per sender
    /// on worker threads. Each worker owns a disjoint set of source ranks
    /// and judges that rank's transfers in submission order; since a
    /// directed link's decision stream is only ever advanced by its own
    /// sender (under a mutex for memory safety), the verdicts — and the
    /// per-link replay counters left behind — are identical to the
    /// sequential judge no matter how threads interleave. Results flow back
    /// over a bounded channel into rank-indexed slots, and settlement
    /// (charging, inboxes, receipts, reshuffle) runs on the coordinator via
    /// the shared [`SimCluster`] path.
    // aa-lint: allow(AA07, slots is sized to proc_count and every src comes from enumerate over the p-slot outbox)
    pub fn exchange_with_receipts<T: Clone + Send>(
        &mut self,
        phase: Phase,
        outbox: Vec<Vec<TransferOut<T>>>,
    ) -> ExchangeReceipts<T> {
        let p = self.sim.proc_count();
        assert_eq!(outbox.len(), p, "outbox must have one slot per processor");
        let workers = self.workers_for(p);
        type JudgedLane<T> = (Vec<TransferOut<T>>, Vec<Verdict>);
        let judged: Vec<JudgedLane<T>> = {
            let (plan, down) = self.sim.fault_and_down();
            let plan = Mutex::new(plan);
            let mut lanes: Vec<Vec<(usize, Vec<TransferOut<T>>)>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (src, transfers) in outbox.into_iter().enumerate() {
                lanes[src % workers].push((src, transfers));
            }
            let mut slots: Vec<Option<JudgedLane<T>>> = (0..p).map(|_| None).collect();
            std::thread::scope(|scope| {
                let (tx, rx) = mpsc::sync_channel(workers);
                for lane in lanes {
                    let tx = tx.clone();
                    let plan = &plan;
                    scope.spawn(move || {
                        for (src, transfers) in lane {
                            let verdicts: Vec<Verdict> = transfers
                                .iter()
                                .map(|t| {
                                    assert!(t.dst < p, "destination {} out of range", t.dst);
                                    assert_ne!(t.dst, src, "self-send from processor {src}");
                                    let mut guard = plan
                                        .lock()
                                        // aa-lint: allow(AA01, a poisoned judge mutex means a sibling sender already panicked; propagating is the only sound option)
                                        .expect("judge mutex poisoned by a sender panic");
                                    judge_transfer(down, guard.as_deref_mut(), src, t.dst)
                                })
                                .collect();
                            tx.send((src, transfers, verdicts))
                                // aa-lint: allow(AA01, the coordinator drains the channel until every worker hangs up; a dead receiver is a panic already in flight)
                                .expect("judge receiver alive until workers finish");
                        }
                    });
                }
                drop(tx);
                for (src, transfers, verdicts) in rx {
                    slots[src] = Some((transfers, verdicts));
                }
            });
            slots
                .into_iter()
                .map(|slot| {
                    // aa-lint: allow(AA01, every src 0..p was assigned to exactly one lane above, so every slot is filled once the scope joins)
                    slot.expect("every sender judged exactly once")
                })
                .collect()
        };
        self.sim.settle_exchange(phase, judged)
    }

    /// Runs `f` once per rank on the worker pool, with exclusive access to
    /// that rank's state slot, charging each rank's measured wall time to
    /// the virtual clocks afterwards in rank order. Semantics match the
    /// simulator's sequential loop: a skipped rank contributes
    /// `R::default()` and no compute charge.
    // aa-lint: allow(AA07, per-rank vectors are sized to states.len() and every rank comes from enumerate over them)
    pub(crate) fn run_on_ranks<S, I, R, F>(
        &mut self,
        phase: Phase,
        states: &mut [S],
        inputs: Vec<I>,
        skip: &[bool],
        f: F,
    ) -> Vec<R>
    where
        S: Send,
        I: Send,
        R: Default + Send,
        F: Fn(usize, &mut S, I) -> R + Sync,
    {
        let p = states.len();
        assert_eq!(inputs.len(), p, "one input per rank");
        assert_eq!(skip.len(), p, "one skip flag per rank");
        let workers = self.workers_for(p);
        let mut lanes: Vec<Vec<(usize, &mut S, I)>> = (0..workers).map(|_| Vec::new()).collect();
        for (rank, (state, input)) in states.iter_mut().zip(inputs).enumerate() {
            lanes[rank % workers].push((rank, state, input));
        }
        let mut slots: Vec<Option<(R, Option<Duration>)>> = (0..p).map(|_| None).collect();
        let f = &f;
        std::thread::scope(|scope| {
            let (tx, rx) = mpsc::sync_channel(workers);
            for lane in lanes {
                let tx = tx.clone();
                scope.spawn(move || {
                    for (rank, state, input) in lane {
                        let out = if skip[rank] {
                            (R::default(), None)
                        } else {
                            let t = Stopwatch::start();
                            let r = f(rank, state, input);
                            (r, Some(t.elapsed()))
                        };
                        tx.send((rank, out))
                            // aa-lint: allow(AA01, the coordinator drains the channel until every worker hangs up; a dead receiver is a panic already in flight)
                            .expect("rank-stage receiver alive until workers finish");
                    }
                });
            }
            drop(tx);
            for (rank, out) in rx {
                slots[rank] = Some(out);
            }
        });
        // Charge and emit in rank order so clock/ledger accumulation is
        // independent of worker completion order.
        slots
            .into_iter()
            .enumerate()
            .map(|(rank, slot)| {
                // aa-lint: allow(AA01, every rank 0..p was assigned to exactly one lane above, so every slot is filled once the scope joins)
                let (r, elapsed) = slot.expect("every rank ran exactly once");
                if let Some(elapsed) = elapsed {
                    self.sim.compute_measured(rank, phase, elapsed);
                }
                r
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultPlan;

    fn sim(p: usize) -> SimCluster {
        SimCluster::new(p, LogPParams::ethernet_1gbe(), ExchangeMode::Serialized)
    }

    fn threaded(p: usize, threads: usize) -> ThreadCluster {
        ThreadCluster::new(
            p,
            LogPParams::ethernet_1gbe(),
            ExchangeMode::Serialized,
            threads,
        )
        .expect("test host spawns threads")
    }

    fn dense_outbox(p: usize, step: u32) -> Vec<Vec<TransferOut<u32>>> {
        (0..p)
            .map(|src| {
                (0..p)
                    .filter(|&d| d != src)
                    .map(|dst| TransferOut {
                        dst,
                        bytes: 8,
                        payload: step * 100 + src as u32,
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn probe_reports_threads_on_test_host() {
        assert!(threads_available());
    }

    #[test]
    fn threaded_exchange_matches_sim_under_faults() {
        for threads in [1, 2, 8, 0] {
            let mut s = sim(6);
            s.set_fault_plan(Some(FaultPlan::new(99, 0.4, 0.2)));
            let mut t = threaded(6, threads);
            t.sim_mut()
                .set_fault_plan(Some(FaultPlan::new(99, 0.4, 0.2)));
            for step in 0..12u32 {
                let want = s.exchange_with_receipts(Phase::Recombination, dense_outbox(6, step));
                let got = t.exchange_with_receipts(Phase::Recombination, dense_outbox(6, step));
                assert_eq!(want, got, "threads={threads} step={step}");
            }
            assert_eq!(s.ledger(), t.sim().ledger(), "threads={threads}");
            assert_eq!(s.makespan_us(), t.sim().makespan_us());
        }
    }

    #[test]
    fn threaded_exchange_respects_down_ranks() {
        let mut s = sim(4);
        s.set_fault_plan(Some(FaultPlan::new(7, 0.3, 0.0)));
        s.mark_down(2);
        let mut t = threaded(4, 3);
        t.sim_mut()
            .set_fault_plan(Some(FaultPlan::new(7, 0.3, 0.0)));
        t.sim_mut().mark_down(2);
        for step in 0..8u32 {
            let want = s.exchange_with_receipts(Phase::Recombination, dense_outbox(4, step));
            let got = t.exchange_with_receipts(Phase::Recombination, dense_outbox(4, step));
            assert_eq!(want, got, "step={step}");
        }
    }

    #[test]
    fn run_on_ranks_runs_every_rank_with_exclusive_state() {
        let mut t = threaded(8, 3);
        let mut states: Vec<u64> = vec![0; 8];
        let inputs: Vec<u64> = (0..8).collect();
        let out = t.run_on_ranks(
            Phase::Recombination,
            &mut states,
            inputs,
            &[false; 8],
            |rank, state, input| {
                *state = input * 10;
                rank as u64 + input
            },
        );
        assert_eq!(states, (0..8).map(|r| r * 10).collect::<Vec<_>>());
        assert_eq!(out, (0..8).map(|r| 2 * r).collect::<Vec<_>>());
        assert!(t.sim().makespan_us() > 0.0, "measured compute was charged");
    }

    #[test]
    fn run_on_ranks_skips_without_charging() {
        let mut t = threaded(4, 2);
        let mut states = vec![0u32; 4];
        let out = t.run_on_ranks(
            Phase::Recombination,
            &mut states,
            vec![(); 4],
            &[false, true, false, true],
            |rank, state, ()| {
                *state = 1;
                rank as u32 + 1
            },
        );
        assert_eq!(states, vec![1, 0, 1, 0], "skipped ranks left untouched");
        assert_eq!(out, vec![1, 0, 3, 0], "skipped ranks yield R::default()");
        let charged = t.sim().compute_us_by_rank();
        assert_eq!(charged[1], 0.0);
        assert_eq!(charged[3], 0.0);
    }
}
