#![forbid(unsafe_code)]
//! A deterministic simulated message-passing cluster — the MPI substitute.
//!
//! The papers run on a 32-node MPI cluster. This runtime replaces it with a
//! *simulated* distributed-memory machine: `P` virtual processors advance in
//! supersteps; the algorithm layer keeps one state object per processor and
//! moves data between them exclusively through [`SimCluster`], which charges
//! every transfer to per-processor LogP virtual clocks and a cost ledger.
//!
//! Why keep the simulator at all: the algorithms under study are defined
//! entirely by *which bytes move when* and *what each processor may know*; a
//! deterministic simulator preserves exactly those semantics, makes every
//! run reproducible, and yields a hardware-independent "cluster time" (the
//! LogP makespan) that the figure reproductions report — see DESIGN.md §2.
//!
//! Since ISSUE 9 there are two interchangeable [`backend::Cluster`]
//! variants: the [`SimCluster`] oracle above, and a [`ThreadCluster`] that
//! runs per-rank work on real OS threads with bounded channels while
//! funnelling all accounting through the same simulator core — so real
//! wall-clock parallelism and the deterministic replay contract coexist,
//! proven equivalent by the cross-backend differential suite (DESIGN.md
//! §16).

pub mod backend;
pub mod cluster;
pub mod detector;
pub mod fault;
pub mod threads;

pub use backend::{BackendKind, Cluster, ExecutionBackend};
pub use cluster::{DeliveryKind, ExchangeMode, SimCluster, TraceEvent, TransferOut};
pub use detector::{FailureDetector, RankHealth};
pub use fault::{CrashFault, Delivery, FaultPlan, LinkFaults, StragglerFault};
pub use threads::{threads_available, ThreadCluster};
