#![forbid(unsafe_code)]
//! A deterministic simulated message-passing cluster — the MPI substitute.
//!
//! The papers run on a 32-node MPI cluster. This runtime replaces it with a
//! *simulated* distributed-memory machine: `P` virtual processors advance in
//! supersteps; the algorithm layer keeps one state object per processor and
//! moves data between them exclusively through [`SimCluster`], which charges
//! every transfer to per-processor LogP virtual clocks and a cost ledger.
//!
//! Why simulation instead of threads + real sockets: the algorithms under
//! study are defined entirely by *which bytes move when* and *what each
//! processor may know*; a deterministic simulator preserves exactly those
//! semantics, makes every run reproducible, and yields a hardware-independent
//! "cluster time" (the LogP makespan) that the figure reproductions report —
//! see DESIGN.md §2. Real shared-memory parallelism still happens *inside*
//! each virtual processor (the paper's OpenMP level, rayon here).

pub mod cluster;
pub mod detector;
pub mod fault;

pub use cluster::{DeliveryKind, ExchangeMode, SimCluster, TraceEvent, TransferOut};
pub use detector::{FailureDetector, RankHealth};
pub use fault::{CrashFault, Delivery, FaultPlan, LinkFaults, StragglerFault};
