//! The ratchet: a committed baseline of pre-existing findings.
//!
//! `lint-baseline.json` maps `rule → file → count`. The gate passes when, for
//! every `(rule, file)` bucket, the current finding count is **at most** the
//! baseline count: new findings fail immediately, burned-down debt is
//! reported as stale so the baseline can be tightened (`--write-baseline`).
//! The baseline never grows through tooling — raising a count is a reviewed
//! edit to the committed file.
//!
//! The format is a strict, sorted subset of JSON written and parsed here by
//! hand (the workspace is offline; serde is not available), so the file is
//! byte-stable across regenerations.

use crate::rules::Finding;
use std::collections::BTreeMap;

/// `rule id → workspace-relative file → finding count`.
pub type Baseline = BTreeMap<String, BTreeMap<String, usize>>;

/// Aggregates findings into baseline buckets. Interprocedural findings
/// (those carrying a symbol) bucket per `file#Type::fn`, so burning down one
/// fn cannot mask a regression in a sibling fn of the same file.
pub fn bucket_counts(findings: &[Finding]) -> Baseline {
    let mut out = Baseline::new();
    for f in findings {
        let key = match &f.symbol {
            Some(sym) => format!("{}#{sym}", f.file),
            None => f.file.clone(),
        };
        *out.entry(f.rule.as_str().to_string())
            .or_default()
            .entry(key)
            .or_default() += 1;
    }
    out
}

/// The ratchet verdict for one `(rule, file)` bucket that moved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketDelta {
    pub rule: String,
    pub file: String,
    pub baseline: usize,
    pub current: usize,
}

/// Ratchet comparison: buckets over baseline (failures) and under it (stale
/// entries the baseline writer should tighten).
#[derive(Debug, Default)]
pub struct RatchetReport {
    pub regressions: Vec<BucketDelta>,
    pub stale: Vec<BucketDelta>,
}

impl RatchetReport {
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares current findings against the committed baseline.
pub fn ratchet(current: &Baseline, baseline: &Baseline) -> RatchetReport {
    let mut report = RatchetReport::default();
    let zero = BTreeMap::new();
    // Buckets present now: over-baseline is a regression, under is stale.
    for (rule, files) in current {
        let base_files = baseline.get(rule).unwrap_or(&zero);
        for (file, &n) in files {
            let b = base_files.get(file).copied().unwrap_or(0);
            let delta = BucketDelta {
                rule: rule.clone(),
                file: file.clone(),
                baseline: b,
                current: n,
            };
            if n > b {
                report.regressions.push(delta);
            } else if n < b {
                report.stale.push(delta);
            }
        }
    }
    // Buckets that vanished entirely are stale too.
    for (rule, files) in baseline {
        for (file, &b) in files {
            let gone = current
                .get(rule)
                .and_then(|f| f.get(file))
                .copied()
                .unwrap_or(0)
                == 0;
            if b > 0 && gone {
                report.stale.push(BucketDelta {
                    rule: rule.clone(),
                    file: file.clone(),
                    baseline: b,
                    current: 0,
                });
            }
        }
    }
    report
}

/// Total finding count a baseline admits.
pub fn total(b: &Baseline) -> usize {
    b.values().flat_map(|f| f.values()).sum()
}

/// Serializes a baseline as sorted, pretty JSON.
pub fn to_json(b: &Baseline) -> String {
    let mut s = String::from("{\n  \"version\": 1,\n  \"rules\": {");
    let mut first_rule = true;
    for (rule, files) in b {
        if files.is_empty() {
            continue;
        }
        if !first_rule {
            s.push(',');
        }
        first_rule = false;
        s.push_str(&format!("\n    {}: {{", quote(rule)));
        let mut first_file = true;
        for (file, n) in files {
            if !first_file {
                s.push(',');
            }
            first_file = false;
            s.push_str(&format!("\n      {}: {n}", quote(file)));
        }
        s.push_str("\n    }");
    }
    s.push_str("\n  }\n}\n");
    s
}

/// Parses the baseline JSON subset written by [`to_json`] (tolerant of
/// whitespace/ordering, intolerant of anything structurally different).
pub fn from_json(src: &str) -> Result<Baseline, String> {
    let mut p = Parser {
        chars: src.chars().collect(),
        pos: 0,
    };
    p.skip_ws();
    p.expect_char('{')?;
    let mut baseline = Baseline::new();
    loop {
        p.skip_ws();
        if p.eat('}') {
            break;
        }
        let key = p.string()?;
        p.skip_ws();
        p.expect_char(':')?;
        p.skip_ws();
        match key.as_str() {
            "version" => {
                let v = p.number()?;
                if v != 1 {
                    return Err(format!("unsupported baseline version {v}"));
                }
            }
            "rules" => {
                p.expect_char('{')?;
                loop {
                    p.skip_ws();
                    if p.eat('}') {
                        break;
                    }
                    let rule = p.string()?;
                    p.skip_ws();
                    p.expect_char(':')?;
                    p.skip_ws();
                    p.expect_char('{')?;
                    let files: &mut BTreeMap<String, usize> = baseline.entry(rule).or_default();
                    loop {
                        p.skip_ws();
                        if p.eat('}') {
                            break;
                        }
                        let file = p.string()?;
                        p.skip_ws();
                        p.expect_char(':')?;
                        p.skip_ws();
                        files.insert(file, p.number()?);
                        p.skip_ws();
                        p.eat(',');
                    }
                    p.skip_ws();
                    p.eat(',');
                }
            }
            other => return Err(format!("unknown baseline key {other:?}")),
        }
        p.skip_ws();
        p.eat(',');
    }
    Ok(baseline)
}

/// JSON string escaping for paths/messages (ASCII control chars, quotes,
/// backslashes).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while self.chars.get(self.pos).is_some_and(|c| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: char) -> bool {
        if self.chars.get(self.pos) == Some(&c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_char(&mut self, c: char) -> Result<(), String> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!(
                "baseline parse error at offset {}: expected {c:?}, found {:?}",
                self.pos,
                self.chars.get(self.pos)
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_char('"')?;
        let mut out = String::new();
        while let Some(&c) = self.chars.get(self.pos) {
            self.pos += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let esc = self.chars.get(self.pos).copied().unwrap_or('"');
                    self.pos += 1;
                    out.push(match esc {
                        'n' => '\n',
                        'r' => '\r',
                        't' => '\t',
                        other => other,
                    });
                }
                c => out.push(c),
            }
        }
        Err("baseline parse error: unterminated string".into())
    }

    fn number(&mut self) -> Result<usize, String> {
        let start = self.pos;
        while self.chars.get(self.pos).is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!(
                "baseline parse error at offset {start}: expected a number"
            ));
        }
        self.chars[start..self.pos]
            .iter()
            .collect::<String>()
            .parse()
            .map_err(|e| format!("baseline parse error: {e}"))
    }
}
