//! A comment/string-aware Rust lexer.
//!
//! The analyzer's rules are token-pattern matchers, so the lexer's one job is
//! to never confuse *code* with *text that looks like code*: `"unwrap()"`
//! inside a string literal, `partial_cmp` inside a doc comment, `'a` the
//! lifetime versus `'a'` the char literal, and `r#"..."#` raw strings must
//! all come out as single opaque tokens. It is not a full Rust lexer (no
//! float-suffix validation, no shebang handling beyond line 1) — it is exactly
//! the subset the rules in [`crate::rules`] need, with line/column spans.

/// The coarse token classes the rules match on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `as`, `for`, `HashMap`, ...).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
    /// Integer literal (any base, with suffix).
    Int,
    /// Float literal (`0.95`, `1e-3`, `2f64`).
    Float,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Punctuation; multi-char operators (`==`, `!=`, `::`, ...) are fused.
    Punct,
}

/// One token with its source span.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    /// The token text. For `Str`/`Char` this is the literal *content-bearing*
    /// source slice; rules treat it as opaque.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column of the token's first character.
    pub col: u32,
    /// Byte offset of the token's first character in the source. The fixer
    /// edits source text by byte span; for every token except raw
    /// identifiers (`r#name`) the span is `offset..offset + text.len()`.
    pub offset: usize,
}

/// A comment (line or block), kept separately from the token stream so the
/// pragma scanner can see it while the rule matchers cannot.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including the delimiters.
    pub text: String,
    /// 1-based line where the comment starts.
    pub line: u32,
    /// 1-based line where the comment ends (differs for block comments).
    pub end_line: u32,
}

/// Lexer output: the token stream plus the comment side-channel.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Two-character operators that must not be split (the rules need `==`/`!=`
/// as single tokens; the rest are fused so expressions read sanely).
/// `<<` and `>>` are deliberately NOT fused: in `Vec<Vec<u64>>` the `>>`
/// closes two generic lists, and in `Vec<<T as Tr>::Item>` the `<<` opens
/// one — the parser needs individual angle tokens, and no rule matches on
/// shift operators.
const TWO_CHAR_OPS: &[&str] = &[
    "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=", "-=", "*=", "/=", "%=", "^=",
    "&=", "|=",
];

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    byte: usize,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            self.byte += c.len_utf8();
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        c
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments. Never fails: unterminated literals
/// are closed at end-of-file (the analyzer must degrade gracefully on files
/// that do not compile yet).
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
        byte: 0,
    };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek(0) {
        let (line, col, offset) = (cur.line, cur.col, cur.byte);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            let mut text = String::new();
            while let Some(c) = cur.peek(0) {
                if c == '\n' {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            out.comments.push(Comment {
                text,
                line,
                end_line: line,
            });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            let mut text = String::new();
            let mut depth = 0usize;
            while let Some(c) = cur.peek(0) {
                if c == '/' && cur.peek(1) == Some('*') {
                    depth += 1;
                    text.push_str("/*");
                    cur.bump();
                    cur.bump();
                } else if c == '*' && cur.peek(1) == Some('/') {
                    depth -= 1;
                    text.push_str("*/");
                    cur.bump();
                    cur.bump();
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(c);
                    cur.bump();
                }
            }
            out.comments.push(Comment {
                text,
                line,
                end_line: cur.line,
            });
            continue;
        }
        // Lifetime vs char literal.
        if c == '\'' {
            if let Some(n) = cur.peek(1) {
                let is_lifetime = is_ident_start(n) && {
                    // 'a' is a char, 'a is a lifetime: scan the ident run and
                    // see whether a closing quote follows immediately.
                    let mut k = 2;
                    while cur.peek(k).is_some_and(is_ident_continue) {
                        k += 1;
                    }
                    cur.peek(k) != Some('\'')
                };
                if is_lifetime {
                    let mut text = String::from('\'');
                    cur.bump();
                    while cur.peek(0).is_some_and(is_ident_continue) {
                        text.push(cur.bump().unwrap_or('_'));
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text,
                        line,
                        col,
                        offset,
                    });
                    continue;
                }
            }
            out.tokens.push(lex_quoted(&mut cur, '\'', TokenKind::Char));
            continue;
        }
        if c == '"' {
            out.tokens.push(lex_quoted(&mut cur, '"', TokenKind::Str));
            continue;
        }
        // Identifiers — including the string-literal prefixes r"", b"", br"",
        // c"", cr"" and raw identifiers r#ident.
        if is_ident_start(c) {
            if let Some(tok) = try_lex_prefixed_string(&mut cur) {
                out.tokens.push(tok);
                continue;
            }
            let mut text = String::new();
            while cur.peek(0).is_some_and(is_ident_continue) {
                text.push(cur.bump().unwrap_or('_'));
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text,
                line,
                col,
                offset,
            });
            continue;
        }
        if c.is_ascii_digit() {
            // `x.0.1` is a tuple-index chain, not the float `0.1`: a number
            // directly following a `.` punct never takes a fractional part.
            let after_dot = out
                .tokens
                .last()
                .is_some_and(|t| t.kind == TokenKind::Punct && t.text == ".");
            out.tokens.push(lex_number(&mut cur, after_dot));
            continue;
        }
        // `#` before `"` only occurs inside raw strings, which are handled
        // above; everything else is punctuation, with known operators fused.
        let mut text = String::from(c);
        cur.bump();
        if let Some(n) = cur.peek(0) {
            let two: String = [c, n].iter().collect();
            if TWO_CHAR_OPS.contains(&two.as_str()) {
                cur.bump();
                text = two;
                // ..= is the only three-char operator the rules care to fuse.
                if text == ".." && cur.peek(0) == Some('=') {
                    cur.bump();
                    text.push('=');
                }
            }
        }
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text,
            line,
            col,
            offset,
        });
    }
    out
}

/// Lexes a `'...'` or `"..."` literal with escape handling. The cursor is on
/// the opening quote.
fn lex_quoted(cur: &mut Cursor, quote: char, kind: TokenKind) -> Token {
    let (line, col, offset) = (cur.line, cur.col, cur.byte);
    let mut text = String::new();
    text.push(cur.bump().unwrap_or(quote)); // opening quote
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            text.push(c);
            cur.bump();
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
            continue;
        }
        text.push(c);
        cur.bump();
        if c == quote {
            break;
        }
    }
    Token {
        kind,
        text,
        line,
        col,
        offset,
    }
}

/// Handles `r"…"`, `r#"…"#` (any number of hashes), `b"…"`, `br#"…"#`,
/// `c"…"`, `cr"…"`, `b'…'`, and raw identifiers `r#ident`. Returns `None`
/// if the cursor is on a plain identifier.
fn try_lex_prefixed_string(cur: &mut Cursor) -> Option<Token> {
    let (line, col, offset) = (cur.line, cur.col, cur.byte);
    let c0 = cur.peek(0)?;
    let prefix_len = match (c0, cur.peek(1)) {
        ('b', Some('r')) | ('c', Some('r')) => 2,
        ('r' | 'b' | 'c', _) => 1,
        _ => return None,
    };
    let raw = c0 == 'r' || (prefix_len == 2 && cur.peek(1) == Some('r'));
    // Count hashes after the prefix (raw flavours only).
    let mut hashes = 0usize;
    while raw && cur.peek(prefix_len + hashes) == Some('#') {
        hashes += 1;
    }
    let quote = cur.peek(prefix_len + hashes)?;
    if quote == '"' {
        let mut text = String::new();
        for _ in 0..prefix_len + hashes + 1 {
            text.push(cur.bump().unwrap_or('"'));
        }
        if raw {
            // Raw string: no escapes; ends at `"` followed by `hashes` #s.
            while let Some(c) = cur.peek(0) {
                if c == '"' && (1..=hashes).all(|k| cur.peek(k) == Some('#')) {
                    for _ in 0..hashes + 1 {
                        text.push(cur.bump().unwrap_or('#'));
                    }
                    break;
                }
                text.push(c);
                cur.bump();
            }
        } else {
            // b"…" / c"…": escapes apply.
            while let Some(c) = cur.peek(0) {
                if c == '\\' {
                    text.push(c);
                    cur.bump();
                    if let Some(esc) = cur.bump() {
                        text.push(esc);
                    }
                    continue;
                }
                text.push(c);
                cur.bump();
                if c == '"' {
                    break;
                }
            }
        }
        return Some(Token {
            kind: TokenKind::Str,
            text,
            line,
            col,
            offset,
        });
    }
    if quote == '\'' && prefix_len == 1 && c0 == 'b' && hashes == 0 {
        cur.bump(); // consume the b
        let mut tok = lex_quoted(cur, '\'', TokenKind::Char);
        tok.text.insert(0, 'b');
        tok.line = line;
        tok.col = col;
        tok.offset = offset;
        return Some(tok);
    }
    if c0 == 'r' && hashes == 1 && cur.peek(2).is_some_and(is_ident_start) {
        // Raw identifier r#match: token text is the bare identifier, so the
        // rules see `r#unwrap` and `unwrap` identically.
        cur.bump();
        cur.bump();
        let mut text = String::new();
        while cur.peek(0).is_some_and(is_ident_continue) {
            text.push(cur.bump().unwrap_or('_'));
        }
        return Some(Token {
            kind: TokenKind::Ident,
            text,
            line,
            col,
            offset,
        });
    }
    None
}

/// Lexes a numeric literal. `1.5`, `1e-3` and `2f64` are floats; `1.max(2)`
/// and `0..n` keep the `1`/`0` as integers (the dot belongs to the method
/// call / range). `after_dot` marks a number that directly follows a `.`
/// punct — a tuple index like the `0` in `x.0.1` — which never takes a
/// fractional part of its own.
fn lex_number(cur: &mut Cursor, after_dot: bool) -> Token {
    let (line, col, offset) = (cur.line, cur.col, cur.byte);
    let mut text = String::new();
    let mut float = false;
    if cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x' | 'o' | 'b')) {
        text.push(cur.bump().unwrap_or('0'));
        text.push(cur.bump().unwrap_or('x'));
        while cur
            .peek(0)
            .is_some_and(|c| c.is_ascii_hexdigit() || c == '_')
        {
            text.push(cur.bump().unwrap_or('0'));
        }
    } else {
        while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
            text.push(cur.bump().unwrap_or('0'));
        }
        // Fractional part: only if the dot is followed by a digit, or by
        // nothing identifier-like (so `1.` is a float but `1.max` is not,
        // and `0..n` leaves the range operator alone).
        if cur.peek(0) == Some('.') && !after_dot {
            let after = cur.peek(1);
            let digit_after = after.is_some_and(|c| c.is_ascii_digit());
            let plain_dot = after != Some('.') && !after.is_some_and(is_ident_start);
            if digit_after || plain_dot {
                float = true;
                text.push(cur.bump().unwrap_or('.'));
                while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    text.push(cur.bump().unwrap_or('0'));
                }
            }
        }
        // Exponent.
        if matches!(cur.peek(0), Some('e' | 'E')) {
            let (sign, first_digit) = match cur.peek(1) {
                Some('+' | '-') => (1, cur.peek(2)),
                other => (0, other),
            };
            if first_digit.is_some_and(|c| c.is_ascii_digit()) {
                float = true;
                for _ in 0..sign + 1 {
                    text.push(cur.bump().unwrap_or('e'));
                }
                while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    text.push(cur.bump().unwrap_or('0'));
                }
            }
        }
    }
    // Type suffix (u32, f64, usize, ...).
    let mut suffix = String::new();
    while cur.peek(0).is_some_and(is_ident_continue) {
        suffix.push(cur.bump().unwrap_or('_'));
    }
    if suffix.starts_with("f32") || suffix.starts_with("f64") {
        float = true;
    }
    text.push_str(&suffix);
    Token {
        kind: if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        },
        text,
        line,
        col,
        offset,
    }
}
