//! The AA rule set: token-pattern matchers over [`crate::lexer`] output.
//!
//! Each rule has a stable ID, a one-line rationale tying it to the paper
//! property it protects (see DESIGN.md §10), and span-accurate findings.
//! Findings can be suppressed in source with
//! `// aa-lint: allow(AA04, reason why this occurrence is sound)` placed on
//! the offending line or the line directly above it. A pragma without a
//! reason is itself a finding (AA00): the suppression ledger is part of the
//! audit trail.

use crate::lexer::{lex, Comment, Lexed, Token, TokenKind};

/// Stable rule identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Meta: malformed or reason-less suppression pragma.
    AA00,
    /// No `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`
    /// in non-test library code.
    AA01,
    /// No `partial_cmp(..).unwrap()` — NaN-safe orderings require
    /// `total_cmp` (or an explicit NaN policy).
    AA02,
    /// No `==`/`!=` against float literals — estimates need epsilon
    /// comparisons or integer hop counts.
    AA03,
    /// Determinism: no wall-clock types, no unseeded RNG, no iteration over
    /// `HashMap`/`HashSet` in the deterministic core (`aa-core`,
    /// `aa-runtime`).
    AA04,
    /// No lossy `as` narrowing / float→int casts in engine hot paths.
    AA05,
    /// Every library crate root must declare `#![forbid(unsafe_code)]`.
    AA06,
    /// Interprocedural: no non-test library fn whose call-graph closure
    /// reaches `panic!`/`unwrap`/`expect`/indexing without a reasoned pragma.
    AA07,
    /// Interprocedural: no deterministic-core fn whose call-graph closure
    /// reaches a nondeterminism source (wall clock, unseeded RNG, hash-order
    /// iteration, thread ids) outside the core — the static complement of
    /// the intra-file AA04 matcher.
    AA08,
    /// Durability ordering: file writes in `aa-durable`/the CLI go through
    /// `atomic_write_file` (write→fsync→rename), barrier flushes happen
    /// after the group-commit marker, and `WriteOutcome::Logged` acks are
    /// only emitted on paths that passed through the WAL append.
    AA09,
}

impl RuleId {
    pub const ALL: [RuleId; 10] = [
        RuleId::AA00,
        RuleId::AA01,
        RuleId::AA02,
        RuleId::AA03,
        RuleId::AA04,
        RuleId::AA05,
        RuleId::AA06,
        RuleId::AA07,
        RuleId::AA08,
        RuleId::AA09,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::AA00 => "AA00",
            RuleId::AA01 => "AA01",
            RuleId::AA02 => "AA02",
            RuleId::AA03 => "AA03",
            RuleId::AA04 => "AA04",
            RuleId::AA05 => "AA05",
            RuleId::AA06 => "AA06",
            RuleId::AA07 => "AA07",
            RuleId::AA08 => "AA08",
            RuleId::AA09 => "AA09",
        }
    }

    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.as_str() == s)
    }

    /// The invariant the rule protects, for reports.
    pub fn rationale(self) -> &'static str {
        match self {
            RuleId::AA00 => "suppressions must carry an auditable reason",
            RuleId::AA01 => "the anytime core must degrade, not abort: partial results stay valid",
            RuleId::AA02 => "rankings must be NaN-safe: estimates and exact values mix freely",
            RuleId::AA03 => "distance/centrality estimates are bounds, not exact values",
            RuleId::AA04 => "recombination must be deterministic so fault plans replay exactly",
            RuleId::AA05 => "silent truncation corrupts distance bounds instead of failing loudly",
            RuleId::AA06 => "the memory-safety argument is workspace-wide, not per-review",
            RuleId::AA07 => {
                "anytime availability: a panic two calls deep still aborts the superstep"
            }
            RuleId::AA08 => {
                "sim-as-oracle differential testing needs the whole call closure deterministic"
            }
            RuleId::AA09 => "acks ahead of the group-commit marker lie to clients across crashes",
        }
    }
}

/// One finding, pointing at a source span.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: RuleId,
    /// Workspace-relative path (stable across machines; baseline key).
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
    /// For interprocedural rules (AA07–AA09): the `Type::fn` symbol the
    /// finding is attached to. Symbol-keyed findings ratchet per-fn (baseline
    /// bucket `file#symbol`), so fixing one fn cannot mask a regression in
    /// another fn of the same file.
    pub symbol: Option<String>,
}

/// What kind of code a file holds — decides which rules apply.
#[derive(Debug, Clone, Default)]
pub struct FileClass {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// The `crates/<name>` directory the file lives under, if any.
    pub crate_name: Option<String>,
    /// Whole file is test/bench/example code (AA01–AA03 exempt).
    pub is_test_code: bool,
    /// Crate-level exemption from AA01 (cli and bench crates: operator
    /// tooling may panic on broken input).
    pub allow_panics: bool,
    /// File is on the engine hot path (AA05 applies).
    pub is_hot_path: bool,
    /// File is a library crate root (AA06 applies).
    pub is_lib_root: bool,
    /// Crate is part of the deterministic core (AA04 applies).
    pub deterministic_core: bool,
}

/// A parsed suppression pragma.
#[derive(Debug, Clone)]
struct Pragma {
    rule: RuleId,
    /// Line the pragma is attached to (its own line; it also covers the
    /// next line so a standalone comment can precede the offending code).
    line: u32,
}

/// Per-file analysis result.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Findings that survived pragma suppression.
    pub findings: Vec<Finding>,
    /// Findings silenced by a pragma (kept for the JSON audit trail).
    pub suppressed: Vec<Finding>,
}

/// Analyzes one file's source text under the given classification.
pub fn check_source(class: &FileClass, src: &str) -> FileReport {
    check_lexed(class, &lex(src))
}

/// [`check_source`] over an already-lexed file, so the workspace driver can
/// lex once and share the token stream with the interprocedural passes.
pub fn check_lexed(class: &FileClass, lexed: &Lexed) -> FileReport {
    let test_ranges = test_ranges(&lexed.tokens);
    let in_test = |idx: usize| test_ranges.iter().any(|&(a, b)| idx >= a && idx <= b);

    let mut raw: Vec<Finding> = Vec::new();
    let (pragmas, mut pragma_findings) = parse_pragmas(class, &lexed.comments);
    raw.append(&mut pragma_findings);

    // AA02 runs before AA01 and claims the `unwrap` it consumes, so a
    // `partial_cmp(..).unwrap()` chain reports once, under the sharper rule.
    let mut claimed: Vec<usize> = Vec::new();
    if !class.is_test_code {
        check_aa02(class, &lexed.tokens, &in_test, &mut raw, &mut claimed);
        if !class.allow_panics {
            check_aa01(class, &lexed.tokens, &in_test, &claimed, &mut raw);
        }
        check_aa03(class, &lexed.tokens, &in_test, &mut raw);
        if class.deterministic_core {
            check_aa04(class, &lexed.tokens, &in_test, &mut raw);
        }
        if class.is_hot_path {
            check_aa05(class, &lexed.tokens, &in_test, &mut raw);
        }
    }
    if class.is_lib_root {
        check_aa06(class, lexed, &mut raw);
    }

    let mut report = FileReport::default();
    for f in raw {
        let suppressed = f.rule != RuleId::AA00
            && pragmas
                .iter()
                .any(|p| p.rule == f.rule && (p.line == f.line || p.line + 1 == f.line));
        if suppressed {
            report.suppressed.push(f);
        } else {
            report.findings.push(f);
        }
    }
    report
        .findings
        .sort_by_key(|f| (f.line, f.col, f.rule as u8));
    report
}

fn finding(class: &FileClass, rule: RuleId, tok: &Token, message: String) -> Finding {
    Finding {
        rule,
        file: class.rel_path.clone(),
        line: tok.line,
        col: tok.col,
        message,
        symbol: None,
    }
}

/// Parses one comment as a pragma: `None` if the comment lacks the pragma
/// prefix, `Ok(rule)` for a well-formed `allow(RULE, reason)`, `Err(msg)`
/// for a malformed or reason-less one.
fn parse_pragma(text: &str) -> Option<Result<RuleId, String>> {
    let at = text.find("aa-lint:")?;
    let rest = text[at + "aa-lint:".len()..].trim_start();
    let Some(body) = rest
        .strip_prefix("allow(")
        .and_then(|r| r.split(')').next())
    else {
        return Some(Err("expected `allow(RULE_ID, reason)`".into()));
    };
    let (rule_str, reason) = match body.split_once(',') {
        Some((r, why)) => (r.trim(), why.trim()),
        None => (body.trim(), ""),
    };
    let Some(rule) = RuleId::parse(rule_str) else {
        return Some(Err(format!("unknown rule id {rule_str:?}")));
    };
    if reason.is_empty() {
        return Some(Err(format!(
            "allow({}) needs a reason: `allow({}, why this is sound)`",
            rule.as_str(),
            rule.as_str()
        )));
    }
    Some(Ok(rule))
}

/// The well-formed `(rule, line)` suppression pragmas in a file, for the
/// interprocedural passes (which attach fn-level pragmas by line). A pragma
/// covers its own line and the line directly below it.
pub fn pragma_lines(comments: &[Comment]) -> Vec<(RuleId, u32)> {
    comments
        .iter()
        .filter_map(|c| match parse_pragma(&c.text) {
            Some(Ok(rule)) => Some((rule, c.end_line)),
            _ => None,
        })
        .collect()
}

/// Parses `allow(<rule>, <reason>)` suppression pragmas out of comments.
/// Malformed pragmas and pragmas without a reason become AA00 findings — a
/// silent suppression is worse than the finding it hides.
fn parse_pragmas(class: &FileClass, comments: &[Comment]) -> (Vec<Pragma>, Vec<Finding>) {
    let mut pragmas = Vec::new();
    let mut findings = Vec::new();
    for c in comments {
        match parse_pragma(&c.text) {
            None => {}
            Some(Ok(rule)) => pragmas.push(Pragma {
                rule,
                line: c.end_line,
            }),
            Some(Err(msg)) => findings.push(Finding {
                rule: RuleId::AA00,
                file: class.rel_path.clone(),
                line: c.end_line,
                col: 1,
                message: format!("malformed aa-lint pragma: {msg}"),
                symbol: None,
            }),
        }
    }
    (pragmas, findings)
}

/// Finds token-index ranges covered by `#[cfg(test)]` / `#[test]` items, so
/// the in-file test modules every crate carries are exempt from AA01–AA05.
pub(crate) fn test_ranges(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].kind == TokenKind::Punct && toks[i].text == "#") {
            i += 1;
            continue;
        }
        let Some((attr_end, is_test_attr)) = scan_attribute(toks, i) else {
            i += 1;
            continue;
        };
        if !is_test_attr {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes between #[cfg(test)] and the item.
        let mut j = attr_end + 1;
        while j < toks.len() && toks[j].kind == TokenKind::Punct && toks[j].text == "#" {
            match scan_attribute(toks, j) {
                Some((e, _)) => j = e + 1,
                None => break,
            }
        }
        // The item body is either brace-delimited (mod/fn/impl) or ends at
        // the first top-level `;` (use/static). Track (), [] nesting so a
        // `;` inside an array type does not end the region early.
        let mut depth_round = 0i32;
        let mut depth_square = 0i32;
        let mut end = j;
        while end < toks.len() {
            let t = &toks[end];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" => depth_round += 1,
                    ")" => depth_round -= 1,
                    "[" => depth_square += 1,
                    "]" => depth_square -= 1,
                    ";" if depth_round == 0 && depth_square == 0 => break,
                    "{" if depth_round == 0 && depth_square == 0 => {
                        end = match_brace(toks, end);
                        break;
                    }
                    _ => {}
                }
            }
            end += 1;
        }
        ranges.push((i, end.min(toks.len().saturating_sub(1))));
        i = end + 1;
    }
    ranges
}

/// Scans an attribute starting at the `#` token; returns the index of the
/// closing `]` and whether the attribute marks test-only code.
fn scan_attribute(toks: &[Token], hash: usize) -> Option<(usize, bool)> {
    let mut i = hash + 1;
    // Inner attribute `#![...]`.
    if toks.get(i).is_some_and(|t| t.text == "!") {
        i += 1;
    }
    if toks.get(i).is_none_or(|t| t.text != "[") {
        return None;
    }
    let mut depth = 0i32;
    let mut saw_cfg = false;
    let mut saw_test = false;
    let mut saw_not = false; // #[cfg(not(test))] is emphatically NOT test code
    let mut only_test = true; // true if the attribute is exactly #[test]
    let mut idents = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match (t.kind, t.text.as_str()) {
            (TokenKind::Punct, "[") => depth += 1,
            (TokenKind::Punct, "]") => {
                depth -= 1;
                if depth == 0 {
                    let is_test =
                        (saw_cfg && saw_test && !saw_not) || (only_test && saw_test && idents == 1);
                    return Some((i, is_test));
                }
            }
            (TokenKind::Ident, name) => {
                idents += 1;
                match name {
                    "cfg" => saw_cfg = true,
                    "test" => saw_test = true,
                    "not" => saw_not = true,
                    _ => only_test = false,
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Index of the `}` matching the `{` at `open` (or the last token).
pub(crate) fn match_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
    }
    toks.len().saturating_sub(1)
}

pub(crate) const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// AA01: no `.unwrap()` / `.expect(..)` / panic-family macros in non-test
/// library code.
fn check_aa01(
    class: &FileClass,
    toks: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    claimed: &[usize],
    out: &mut Vec<Finding>,
) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || in_test(i) || claimed.contains(&i) {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].text == ".";
        let next = toks.get(i + 1).map(|t| t.text.as_str());
        match t.text.as_str() {
            "unwrap" | "expect" if prev_dot && next == Some("(") => {
                out.push(finding(
                    class,
                    RuleId::AA01,
                    t,
                    format!(
                        "`.{}()` in library code: return a Result with context \
                         (the anytime engine must degrade, not abort)",
                        t.text
                    ),
                ));
            }
            m if PANIC_MACROS.contains(&m) && next == Some("!") => {
                out.push(finding(
                    class,
                    RuleId::AA01,
                    t,
                    format!("`{m}!` in library code: surface an error instead of aborting"),
                ));
            }
            _ => {}
        }
    }
}

/// AA02: `partial_cmp(..).unwrap()` / `.expect(..)` — NaN panics in sorts.
fn check_aa02(
    class: &FileClass,
    toks: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
    claimed: &mut Vec<usize>,
) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "partial_cmp" || in_test(i) {
            continue;
        }
        if toks.get(i + 1).is_none_or(|t| t.text != "(") {
            continue;
        }
        // Find the matching `)` of the partial_cmp call.
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let dot = j + 1;
        let method = j + 2;
        if toks.get(dot).is_some_and(|t| t.text == ".")
            && toks
                .get(method)
                .is_some_and(|t| t.text == "unwrap" || t.text == "expect")
        {
            claimed.push(method);
            out.push(finding(
                class,
                RuleId::AA02,
                t,
                format!(
                    "`partial_cmp(..).{}()` panics on NaN: use `total_cmp` \
                     (estimates and exact values mix in rankings)",
                    toks[method].text
                ),
            ));
        }
    }
}

const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];
const NARROW_INT_TYPES: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// AA03: `==` / `!=` against a float literal.
fn check_aa03(
    class: &FileClass,
    toks: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Punct || (t.text != "==" && t.text != "!=") || in_test(i) {
            continue;
        }
        let float_neighbour = [i.checked_sub(1), Some(i + 1)]
            .into_iter()
            .flatten()
            .filter_map(|k| toks.get(k))
            .any(|n| n.kind == TokenKind::Float);
        if float_neighbour {
            out.push(finding(
                class,
                RuleId::AA03,
                t,
                format!(
                    "float `{}` comparison: distance/centrality estimates need an \
                     epsilon (or compare integer hops)",
                    t.text
                ),
            ));
        }
    }
}

pub(crate) const WALL_CLOCK_TYPES: &[&str] = &["Instant", "SystemTime"];
pub(crate) const UNSEEDED_RNG: &[&str] = &["thread_rng", "from_entropy", "from_os_rng", "random"];
pub(crate) const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
pub(crate) const ORDER_LEAK_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];

/// AA04 (deterministic core only): wall clocks, unseeded RNG, and iteration
/// over hash-ordered collections.
fn check_aa04(
    class: &FileClass,
    toks: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    // Pass 1: find identifiers declared with a HashMap/HashSet type in this
    // file (`name: HashMap<..>` fields/params, `let name = HashMap::new()`).
    let mut hash_vars: Vec<&str> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || !HASH_TYPES.contains(&t.text.as_str()) {
            continue;
        }
        let named = i
            .checked_sub(2)
            .and_then(|k| toks.get(k))
            .filter(|n| n.kind == TokenKind::Ident)
            .filter(|_| matches!(toks[i - 1].text.as_str(), ":" | "="));
        if let Some(name) = named {
            if !hash_vars.contains(&name.text.as_str()) {
                hash_vars.push(&name.text);
            }
        }
    }
    let mut last_line = 0u32;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || in_test(i) {
            continue;
        }
        let name = t.text.as_str();
        if WALL_CLOCK_TYPES.contains(&name) {
            // One finding per line: `Instant::now() - start` style lines
            // mention the type more than once.
            if t.line != last_line {
                last_line = t.line;
                out.push(finding(
                    class,
                    RuleId::AA04,
                    t,
                    format!(
                        "`{name}` in the deterministic core: wall-clock values break \
                         seeded replay (use LogP virtual clocks)"
                    ),
                ));
            }
            continue;
        }
        if UNSEEDED_RNG.contains(&name) && toks.get(i + 1).is_some_and(|n| n.text == "(") {
            out.push(finding(
                class,
                RuleId::AA04,
                t,
                format!(
                    "`{name}()` is unseeded: every RNG in the core must derive from the run seed"
                ),
            ));
            continue;
        }
        // Iteration over a known hash-ordered variable.
        if hash_vars.contains(&name) {
            let method_leak = toks.get(i + 1).is_some_and(|n| n.text == ".")
                && toks
                    .get(i + 2)
                    .is_some_and(|m| ORDER_LEAK_METHODS.contains(&m.text.as_str()))
                && toks.get(i + 3).is_some_and(|p| p.text == "(");
            let for_loop_leak = {
                let p1 = i.checked_sub(1).and_then(|k| toks.get(k));
                let p2 = i.checked_sub(2).and_then(|k| toks.get(k));
                matches!(p1, Some(p) if p.text == "in")
                    || (matches!(p1, Some(p) if p.text == "&")
                        && matches!(p2, Some(p) if p.text == "in"))
            };
            if method_leak || for_loop_leak {
                out.push(finding(
                    class,
                    RuleId::AA04,
                    t,
                    format!(
                        "iteration over hash-ordered `{name}`: order feeds downstream \
                         state — use a BTree collection or sort first"
                    ),
                ));
            }
        }
    }
}

/// AA05 (hot-path files only): narrowing `as` casts and float→int `as`.
fn check_aa05(
    class: &FileClass,
    toks: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "as" || in_test(i) {
            continue;
        }
        let Some(target) = toks.get(i + 1) else {
            continue;
        };
        let target_ty = target.text.as_str();
        let from_float = i > 0 && toks[i - 1].kind == TokenKind::Float;
        if from_float && INT_TYPES.contains(&target_ty) {
            out.push(finding(
                class,
                RuleId::AA05,
                t,
                format!(
                    "float→`{target_ty}` `as` cast truncates silently: use a rounding \
                     helper with an explicit policy"
                ),
            ));
        } else if NARROW_INT_TYPES.contains(&target_ty) {
            out.push(finding(
                class,
                RuleId::AA05,
                t,
                format!(
                    "narrowing `as {target_ty}` on a hot path: a silently wrapped id/distance \
                     corrupts bounds — use `try_from` or a checked helper"
                ),
            ));
        }
    }
}

/// AA06: library crate roots must carry `#![forbid(unsafe_code)]`.
fn check_aa06(class: &FileClass, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    let has_forbid = toks.windows(7).any(|w| {
        w[0].text == "#"
            && w[1].text == "!"
            && w[2].text == "["
            && w[3].text == "forbid"
            && w[4].text == "("
            && w[5].text == "unsafe_code"
            && w[6].text == ")"
    });
    if !has_forbid {
        out.push(Finding {
            rule: RuleId::AA06,
            file: class.rel_path.clone(),
            line: 1,
            col: 1,
            message: "library crate root is missing `#![forbid(unsafe_code)]`".into(),
            symbol: None,
        });
    }
}
