//! `--fix`: byte-span autofixes for the mechanical rules.
//!
//! Two rewrites, both purely local:
//!
//! * **AA02** `a.partial_cmp(&b).unwrap()` → `a.total_cmp(&b)` (also the
//!   `.expect(..)` form). `total_cmp` is a total order, so the panic simply
//!   has nothing left to guard.
//! * **AA03** `x == 1.5` → `(x - 1.5).abs() < f64::EPSILON` and
//!   `x != 1.5` → `(x - 1.5).abs() >= f64::EPSILON` (`f32::EPSILON` when
//!   the literal is suffixed `f32`).
//!
//! Fixes are computed from token byte offsets and applied back-to-front so
//! earlier spans stay valid. Sites inside test ranges or covered by a
//! reasoned pragma are left alone — a suppression is a reviewed decision,
//! not a fixable defect. The rewrites are idempotent: fixed output contains
//! no matching pattern, so `--fix --check` on a clean tree is a no-op.

use crate::lexer::{lex, Token, TokenKind};
use crate::rules::{self, FileClass, RuleId};
use crate::workspace;
use std::fs;
use std::path::Path;

/// One byte-span replacement.
#[derive(Debug)]
struct Edit {
    start: usize,
    end: usize,
    replacement: String,
}

/// Rewrites one file's fixable findings. Returns `(fixed_source,
/// edit_count)`, or `None` when nothing applies.
pub fn fix_source(class: &FileClass, src: &str) -> Option<(String, usize)> {
    if class.is_test_code {
        return None;
    }
    let lexed = lex(src);
    let toks = &lexed.tokens;
    let test_ranges = rules::test_ranges(toks);
    let in_test = |idx: usize| test_ranges.iter().any(|&(a, b)| idx >= a && idx <= b);
    let pragmas = rules::pragma_lines(&lexed.comments);
    let covered = |rule: RuleId, line: u32| {
        pragmas
            .iter()
            .any(|&(r, l)| r == rule && (l == line || l + 1 == line))
    };

    let mut edits: Vec<Edit> = Vec::new();
    fix_aa02(src, toks, &in_test, &covered, &mut edits);
    fix_aa03(src, toks, &in_test, &covered, &mut edits);
    if edits.is_empty() {
        return None;
    }
    // Back-to-front application; overlapping edits (shouldn't happen, but
    // degrade safely) are dropped.
    edits.sort_by_key(|e| e.start);
    let mut kept: Vec<Edit> = Vec::new();
    for e in edits {
        if kept.last().is_none_or(|p| p.end <= e.start) {
            kept.push(e);
        }
    }
    let count = kept.len();
    let mut out = src.to_string();
    for e in kept.iter().rev() {
        out.replace_range(e.start..e.end, &e.replacement);
    }
    Some((out, count))
}

/// End byte offset of a token (valid for every token the fixer touches).
fn tok_end(t: &Token) -> usize {
    t.offset + t.text.len()
}

/// `partial_cmp(ARGS).unwrap()` → `total_cmp(ARGS)`.
fn fix_aa02(
    _src: &str,
    toks: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    covered: &dyn Fn(RuleId, u32) -> bool,
    edits: &mut Vec<Edit>,
) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "partial_cmp" || in_test(i) {
            continue;
        }
        if covered(RuleId::AA02, t.line) {
            continue;
        }
        if toks.get(i + 1).is_none_or(|n| n.text != "(") {
            continue;
        }
        let close = match match_round_idx(toks, i + 1) {
            Some(c) => c,
            None => continue,
        };
        let (dot, method) = (close + 1, close + 2);
        if toks.get(dot).is_none_or(|d| d.text != ".")
            || toks
                .get(method)
                .is_none_or(|m| m.text != "unwrap" && m.text != "expect")
            || toks.get(method + 1).is_none_or(|p| p.text != "(")
        {
            continue;
        }
        let Some(call_close) = match_round_idx(toks, method + 1) else {
            continue;
        };
        edits.push(Edit {
            start: t.offset,
            end: tok_end(t),
            replacement: "total_cmp".into(),
        });
        edits.push(Edit {
            start: tok_end(&toks[close]),
            end: tok_end(&toks[call_close]),
            replacement: String::new(),
        });
    }
}

/// `expr == FLOAT` → `(expr - FLOAT).abs() < f64::EPSILON`.
fn fix_aa03(
    src: &str,
    toks: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    covered: &dyn Fn(RuleId, u32) -> bool,
    edits: &mut Vec<Edit>,
) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Punct || (t.text != "==" && t.text != "!=") || in_test(i) {
            continue;
        }
        if covered(RuleId::AA03, t.line) {
            continue;
        }
        let lit_right = toks.get(i + 1).is_some_and(|n| n.kind == TokenKind::Float);
        let lit_left = i
            .checked_sub(1)
            .and_then(|k| toks.get(k))
            .is_some_and(|n| n.kind == TokenKind::Float);
        // Literal-vs-literal is constant folding gone wrong; leave it to a
        // human. Exactly one side must be the literal.
        let (lit_idx, expr_side_right) = match (lit_left, lit_right) {
            (true, false) => (i - 1, true),
            (false, true) => (i + 1, false),
            _ => continue,
        };
        let (expr_start, expr_end) = if expr_side_right {
            let Some(range) = expr_forward(toks, i + 1) else {
                continue;
            };
            range
        } else {
            let Some(range) = expr_backward(toks, i.wrapping_sub(1)) else {
                continue;
            };
            range
        };
        // The walkers capture a *primary* expression chain only. If the
        // operand continues with an arithmetic operator on its outer side
        // (`new - old != 0.0`), rewriting just the captured tail would bind
        // `.abs()` to the wrong subexpression — bail and leave it to a
        // human, who knows where the parentheses belong.
        let (left_start, right_end) = if expr_side_right {
            (lit_idx, expr_end)
        } else {
            (expr_start, lit_idx)
        };
        let continues = |text: &str| matches!(text, "+" | "-" | "*" | "/" | "%");
        if left_start
            .checked_sub(1)
            .and_then(|k| toks.get(k))
            .is_some_and(|p| continues(&p.text))
            || toks.get(right_end + 1).is_some_and(|n| continues(&n.text))
        {
            continue;
        }
        let lit = &toks[lit_idx];
        let expr_src = &src[toks[expr_start].offset..tok_end(&toks[expr_end])];
        let eps = if lit.text.contains("f32") {
            "f32::EPSILON"
        } else {
            "f64::EPSILON"
        };
        let cmp = if t.text == "==" { "<" } else { ">=" };
        let replacement = format!("({expr_src} - {}).abs() {cmp} {eps}", lit.text);
        let span_start = toks[expr_start.min(lit_idx)].offset.min(lit.offset);
        let span_end = tok_end(&toks[expr_end.max(lit_idx)]).max(tok_end(lit));
        edits.push(Edit {
            start: span_start,
            end: span_end,
            replacement,
        });
    }
}

/// Token index of the `)` matching the `(` at `open`.
fn match_round_idx(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Token index of the `(`/`[` matching the closer at `close`, walking back.
fn match_open_idx(toks: &[Token], close: usize) -> Option<usize> {
    let (op, cl) = match toks[close].text.as_str() {
        ")" => ("(", ")"),
        "]" => ("[", "]"),
        _ => return None,
    };
    let mut depth = 0i32;
    for i in (0..=close).rev() {
        let t = &toks[i].text;
        if t == cl {
            depth += 1;
        } else if t == op {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Walks back from `last` over a primary-expression chain (`a.b().c[0]`,
/// `m::f(x)`, plain idents/literals). Returns `(first, last)` token indices.
fn expr_backward(toks: &[Token], last: usize) -> Option<(usize, usize)> {
    let mut j = last;
    loop {
        let t = toks.get(j)?;
        match (t.kind, t.text.as_str()) {
            (TokenKind::Punct, ")" | "]") => {
                j = match_open_idx(toks, j)?;
                // `f(..)` / `xs[..]`: the callee/receiver precedes the group.
                match j.checked_sub(1).map(|k| &toks[k]) {
                    Some(p) if p.kind == TokenKind::Ident => j -= 1,
                    _ => return Some((j, last)),
                }
            }
            (TokenKind::Ident | TokenKind::Int | TokenKind::Float, _) => {}
            _ => return None,
        }
        // Chain continues through `.` / `::`.
        match j.checked_sub(1).map(|k| toks[k].text.as_str()) {
            Some("." | "::") if j >= 2 => j -= 2,
            _ => return Some((j, last)),
        }
    }
}

/// Forward twin of [`expr_backward`], starting at `first`.
fn expr_forward(toks: &[Token], first: usize) -> Option<(usize, usize)> {
    let mut j = first;
    loop {
        let t = toks.get(j)?;
        match (t.kind, t.text.as_str()) {
            (TokenKind::Ident | TokenKind::Int | TokenKind::Float, _) => {}
            _ => return None,
        }
        // Suffixes: call args / index group.
        let mut k = j;
        while toks
            .get(k + 1)
            .is_some_and(|n| n.text == "(" || n.text == "[")
        {
            let close = if toks[k + 1].text == "(" {
                match_round_idx(toks, k + 1)?
            } else {
                match_square_idx(toks, k + 1)?
            };
            k = close;
        }
        match toks.get(k + 1).map(|n| n.text.as_str()) {
            Some("." | "::") if toks.get(k + 2).is_some() => j = k + 2,
            _ => return Some((first, k)),
        }
    }
}

/// Token index of the `]` matching the `[` at `open`.
fn match_square_idx(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Applies (or, with `check_only`, merely counts) fixes across the
/// workspace. Returns `(rel_path, edit_count)` per changed file.
pub fn fix_workspace(root: &Path, check_only: bool) -> Result<Vec<(String, usize)>, String> {
    let files = workspace::collect(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut changed = Vec::new();
    for (path, class) in &files {
        let src =
            fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        if let Some((fixed, count)) = fix_source(class, &src) {
            if !check_only {
                fs::write(path, fixed).map_err(|e| format!("writing {}: {e}", path.display()))?;
            }
            changed.push((class.rel_path.clone(), count));
        }
    }
    Ok(changed)
}
