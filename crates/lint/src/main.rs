//! `aa-lint` CLI.
//!
//! ```text
//! cargo run -p aa-lint                       # human report, ratcheted gate
//! cargo run -p aa-lint -- --format json      # CI artifact
//! cargo run -p aa-lint -- --write-baseline   # tighten the ratchet after a burn-down
//! ```
//!
//! Exit codes: 0 clean (all findings within the committed baseline),
//! 1 new findings or ratchet regressions, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    baseline: Option<PathBuf>,
    format: Format,
    output: Option<PathBuf>,
    write_baseline: bool,
    no_baseline: bool,
}

#[derive(PartialEq)]
enum Format {
    Human,
    Json,
}

const USAGE: &str = "usage: aa-lint [--root DIR] [--baseline FILE] [--no-baseline] \
                     [--format human|json] [--output FILE] [--write-baseline]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        baseline: None,
        format: Format::Human,
        output: None,
        write_baseline: false,
        no_baseline: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--root" => args.root = PathBuf::from(value("--root")?),
            "--baseline" => args.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--output" => args.output = Some(PathBuf::from(value("--output")?)),
            "--format" => {
                args.format = match value("--format")?.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format {other:?}\n{USAGE}")),
                }
            }
            "--write-baseline" => args.write_baseline = true,
            "--no-baseline" => args.no_baseline = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(clean) => ExitCode::from(if clean { 0 } else { 1 }),
        Err(msg) => {
            eprintln!("aa-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &Args) -> Result<bool, String> {
    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| args.root.join("lint-baseline.json"));
    let baseline = if args.no_baseline {
        None
    } else {
        aa_lint::load_baseline(&baseline_path)?
    };
    let report = aa_lint::run(&args.root, baseline.as_ref())?;

    if args.write_baseline {
        let counts = aa_lint::baseline::bucket_counts(&report.findings);
        let json = aa_lint::baseline::to_json(&counts);
        std::fs::write(&baseline_path, json)
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        eprintln!(
            "aa-lint: wrote baseline ({} findings) to {}",
            aa_lint::baseline::total(&counts),
            baseline_path.display()
        );
        return Ok(true);
    }

    let rendered = match args.format {
        Format::Human => aa_lint::render_human(&report),
        Format::Json => aa_lint::render_json(&report),
    };
    match &args.output {
        Some(path) => {
            std::fs::write(path, &rendered)
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
            // Keep the pass/fail summary visible even when the report goes
            // to a file (CI uploads the file, humans read the log).
            eprint!("{}", aa_lint::render_human(&report));
        }
        None => print!("{rendered}"),
    }
    Ok(report.is_clean())
}
