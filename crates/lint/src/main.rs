//! `aa-lint` CLI.
//!
//! ```text
//! cargo run -p aa-lint                       # human report, ratcheted gate
//! cargo run -p aa-lint -- --format json      # CI artifact
//! cargo run -p aa-lint -- --format sarif     # code-scanning annotations
//! cargo run -p aa-lint -- --write-baseline   # tighten the ratchet after a burn-down
//! cargo run -p aa-lint -- --fix              # autofix AA02/AA03 in place
//! cargo run -p aa-lint -- --fix --check      # fail if any autofix is pending
//! ```
//!
//! Exit codes: 0 clean (all findings within the committed baseline),
//! 1 new findings, ratchet regressions, or pending `--fix --check` fixes,
//! 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    baseline: Option<PathBuf>,
    format: Format,
    output: Option<PathBuf>,
    write_baseline: bool,
    no_baseline: bool,
    fix: bool,
    check: bool,
}

#[derive(PartialEq)]
enum Format {
    Human,
    Json,
    Sarif,
}

const USAGE: &str = "usage: aa-lint [--root DIR] [--baseline FILE] [--no-baseline] \
                     [--format human|json|sarif] [--output FILE] [--write-baseline] \
                     [--fix [--check]]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        baseline: None,
        format: Format::Human,
        output: None,
        write_baseline: false,
        no_baseline: false,
        fix: false,
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--root" => args.root = PathBuf::from(value("--root")?),
            "--baseline" => args.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--output" => args.output = Some(PathBuf::from(value("--output")?)),
            "--format" => {
                args.format = match value("--format")?.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format {other:?}\n{USAGE}")),
                }
            }
            "--write-baseline" => args.write_baseline = true,
            "--no-baseline" => args.no_baseline = true,
            "--fix" => args.fix = true,
            "--check" => args.check = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(clean) => ExitCode::from(if clean { 0 } else { 1 }),
        Err(msg) => {
            eprintln!("aa-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &Args) -> Result<bool, String> {
    if args.check && !args.fix {
        return Err(format!("--check only applies with --fix\n{USAGE}"));
    }
    if args.fix {
        let changed = aa_lint::fix::fix_workspace(&args.root, args.check)?;
        for (file, edits) in &changed {
            eprintln!(
                "aa-lint: {} {edits} fix(es) in {file}",
                if args.check { "pending" } else { "applied" }
            );
        }
        if args.check {
            if changed.is_empty() {
                eprintln!("aa-lint: no pending autofixes");
            }
            return Ok(changed.is_empty());
        }
        // Fall through: report on the tree as fixed.
    }
    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| args.root.join("lint-baseline.json"));
    let baseline = if args.no_baseline {
        None
    } else {
        aa_lint::load_baseline(&baseline_path)?
    };
    let report = aa_lint::run(&args.root, baseline.as_ref())?;

    if args.write_baseline {
        let counts = aa_lint::baseline::bucket_counts(&report.findings);
        let json = aa_lint::baseline::to_json(&counts);
        std::fs::write(&baseline_path, json)
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        eprintln!(
            "aa-lint: wrote baseline ({} findings) to {}",
            aa_lint::baseline::total(&counts),
            baseline_path.display()
        );
        return Ok(true);
    }

    let rendered = match args.format {
        Format::Human => aa_lint::render_human(&report),
        Format::Json => aa_lint::render_json(&report),
        Format::Sarif => aa_lint::sarif::render(&report),
    };
    match &args.output {
        Some(path) => {
            std::fs::write(path, &rendered)
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
            // Keep the pass/fail summary visible even when the report goes
            // to a file (CI uploads the file, humans read the log).
            eprint!("{}", aa_lint::render_human(&report));
        }
        None => print!("{rendered}"),
    }
    Ok(report.is_clean())
}
