//! A recursive-descent item parser over the [`crate::lexer`] token stream.
//!
//! The interprocedural rules need *structure*, not full syntax: which fns
//! exist, which impl/trait they belong to, where their bodies start and end,
//! and what they call. This module recovers exactly that — `use` imports,
//! `mod`/`impl`/`trait` nesting, `fn` items (including nested fns and trait
//! default bodies), and the call expressions / method calls inside each
//! body. Closures are not items: their tokens stay part of the enclosing
//! fn's body, so a panic inside a closure is attributed to the fn that owns
//! it. Everything else (expressions, patterns, types) is skipped by
//! bracket-matching, which is why the lexer must never fuse `>>` — generic
//! argument lists are skipped one angle at a time.
//!
//! The parser never fails: on malformed input it resynchronizes at the next
//! item keyword, because the analyzer must degrade gracefully on files that
//! do not compile yet.

use crate::lexer::{Token, TokenKind};
use crate::rules;
use std::collections::BTreeMap;

/// One call expression inside a fn body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name: the method name for `recv.name(..)`, the last path
    /// segment for `a::b::name(..)`, the bare name for `name(..)`.
    pub name: String,
    /// The path segment before `::name`, if any (`Engine` in `Engine::new`,
    /// `self`/`Self` included). `None` for method and bare calls.
    pub qualifier: Option<String>,
    /// `recv.name(..)` — resolved conservatively to every impl of `name`.
    pub is_method: bool,
    pub line: u32,
    pub col: u32,
}

/// One `fn` item (free fn, impl method, trait default method, nested fn, or
/// a body-less trait method declaration).
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Enclosing `impl TYPE` / `trait TYPE` type name, `None` for free fns.
    pub self_type: Option<String>,
    /// `Some(trait)` for methods in `impl Trait for Type` blocks and for
    /// trait declarations/default bodies.
    pub trait_name: Option<String>,
    /// Line/col of the `fn` keyword — findings and fn-level pragmas attach
    /// here.
    pub line: u32,
    pub col: u32,
    /// Token range `[fn keyword, body open)` — the signature, searched for
    /// return types like `WriteOutcome`.
    pub sig: (usize, usize),
    /// Token range `[{, }]` of the body; `None` for trait declarations.
    pub body: Option<(usize, usize)>,
    /// Sub-ranges of `body` that belong to this fn itself — `body` minus any
    /// nested `fn` items. Site scans iterate these.
    pub own_body: Vec<(usize, usize)>,
    /// Inside `#[cfg(test)]` / `#[test]` code.
    pub is_test: bool,
    pub calls: Vec<CallSite>,
}

impl FnItem {
    /// `Type::name` or bare `name` — the baseline/symbol key within a file.
    pub fn symbol(&self) -> String {
        match &self.self_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Parser output for one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub fns: Vec<FnItem>,
    /// `use` map: imported leaf (or `as` alias) → full path. Lets the call
    /// resolver skip callees known to come from std/core/alloc.
    pub imports: BTreeMap<String, String>,
}

/// Item-level context while descending into `mod`/`impl`/`trait` bodies.
#[derive(Debug, Clone, Default)]
struct Ctx {
    self_type: Option<String>,
    trait_name: Option<String>,
}

/// Parses a token stream into fn items and imports.
pub fn parse(toks: &[Token]) -> ParsedFile {
    let test_ranges = rules::test_ranges(toks);
    let mut out = ParsedFile::default();
    parse_items(toks, 0, toks.len(), &Ctx::default(), &test_ranges, &mut out);
    attach_own_bodies(toks, &mut out.fns);
    for f in &mut out.fns {
        f.calls = collect_calls(toks, &f.own_body);
    }
    out
}

/// Scans `[start, end)` for items, recursing into braced bodies.
fn parse_items(
    toks: &[Token],
    start: usize,
    end: usize,
    ctx: &Ctx,
    test_ranges: &[(usize, usize)],
    out: &mut ParsedFile,
) {
    let mut i = start;
    while i < end {
        let t = match toks.get(i) {
            Some(t) => t,
            None => return,
        };
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "use" => i = parse_use(toks, i, end, out),
            "mod" => {
                // `mod name { ... }` recurses with the same ctx; `mod name;`
                // is just a declaration.
                if let Some(open) = find_body_open(toks, i + 1, end) {
                    let close = rules::match_brace(toks, open).min(end.saturating_sub(1));
                    parse_items(toks, open + 1, close, ctx, test_ranges, out);
                    i = close + 1;
                } else {
                    i += 1;
                }
            }
            "impl" => i = parse_impl(toks, i, end, test_ranges, out),
            "trait" => i = parse_trait(toks, i, end, test_ranges, out),
            "fn" => i = parse_fn(toks, i, end, ctx, test_ranges, out),
            _ => i += 1,
        }
    }
}

/// `use a::b::{c, d as e};` → imports c→a::b::c, e→a::b::d. Globs skipped.
fn parse_use(toks: &[Token], kw: usize, end: usize, out: &mut ParsedFile) -> usize {
    let mut i = kw + 1;
    let mut prefix: Vec<String> = Vec::new();
    let mut leaf: Option<String> = None;
    while i < end {
        let t = &toks[i];
        match (t.kind, t.text.as_str()) {
            (TokenKind::Punct, ";") => break,
            (TokenKind::Punct, "::") => {
                if let Some(l) = leaf.take() {
                    prefix.push(l);
                }
            }
            (TokenKind::Punct, "{") => {
                // Group: each comma-separated leaf shares the prefix. Nested
                // groups are flattened by treating `::`/idents uniformly.
                let close = match_group_brace(toks, i, end);
                record_group(toks, i + 1, close, &prefix, out);
                i = close;
                leaf = None;
            }
            // `x as y`: y replaces x as the imported name.
            (TokenKind::Ident, "as") if i + 1 < end && toks[i + 1].kind == TokenKind::Ident => {
                let full = path_of(&prefix, leaf.as_deref().unwrap_or(""));
                out.imports.insert(toks[i + 1].text.clone(), full);
                leaf = None;
                i += 1;
            }
            (TokenKind::Ident, "as") => {}
            (TokenKind::Ident, name) => leaf = Some(name.to_string()),
            _ => {}
        }
        i += 1;
    }
    if let Some(l) = leaf {
        let full = path_of(&prefix, &l);
        out.imports.insert(l, full);
    }
    i + 1
}

fn path_of(prefix: &[String], leaf: &str) -> String {
    let mut parts: Vec<&str> = prefix.iter().map(String::as_str).collect();
    parts.push(leaf);
    parts.join("::")
}

/// `{` matcher for use-groups (token braces, not item bodies).
fn match_group_brace(toks: &[Token], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < end {
        match toks[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    end.saturating_sub(1)
}

/// Records each leaf of a `use` group `{a, b::c, d as e}`.
fn record_group(toks: &[Token], start: usize, end: usize, prefix: &[String], out: &mut ParsedFile) {
    let mut inner: Vec<String> = prefix.to_vec();
    let mut leaf: Option<String> = None;
    let mut i = start;
    while i < end {
        let t = &toks[i];
        match (t.kind, t.text.as_str()) {
            (TokenKind::Punct, ",") => {
                if let Some(l) = leaf.take() {
                    out.imports.insert(l.clone(), path_of(&inner, &l));
                }
                inner = prefix.to_vec();
            }
            (TokenKind::Punct, "::") => {
                if let Some(l) = leaf.take() {
                    inner.push(l);
                }
            }
            (TokenKind::Punct, "{") => {
                let close = match_group_brace(toks, i, end);
                record_group(toks, i + 1, close, &inner, out);
                i = close;
                leaf = None;
            }
            (TokenKind::Ident, "as") if i + 1 < end && toks[i + 1].kind == TokenKind::Ident => {
                let full = path_of(&inner, leaf.as_deref().unwrap_or(""));
                out.imports.insert(toks[i + 1].text.clone(), full);
                leaf = None;
                i += 1;
            }
            (TokenKind::Ident, "as") => {}
            (TokenKind::Ident, "self") => leaf = None, // `use a::b::{self, c}`
            (TokenKind::Ident, name) => leaf = Some(name.to_string()),
            _ => {}
        }
        i += 1;
    }
    if let Some(l) = leaf {
        out.imports.insert(l.clone(), path_of(&inner, &l));
    }
}

/// Skips a `<...>` generic list starting at `open` (individual angle
/// tokens); returns the index after the closing `>`.
fn skip_generics(toks: &[Token], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < end {
        match toks[i].text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            // `(` in generic position only occurs in Fn(..) sugar; skip it
            // wholesale so its `->`/commas cannot confuse the depth count.
            "(" => i = match_round(toks, i, end),
            _ => {}
        }
        i += 1;
    }
    end
}

/// Index of the `)` matching the `(` at `open` (or `end - 1`).
fn match_round(toks: &[Token], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < end {
        match toks[i].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    end.saturating_sub(1)
}

/// Parses a type path at `i`: `&'a mut a::b::Type<X, Y>` → (`Type`, index
/// after the path). Tuples/slices yield `None` (no usable impl-target name).
fn parse_type_path(toks: &[Token], mut i: usize, end: usize) -> (Option<String>, usize) {
    // Skip reference/pointer/dyn decoration.
    while i < end
        && (toks[i].kind == TokenKind::Lifetime
            || matches!(toks[i].text.as_str(), "&" | "*" | "mut" | "const" | "dyn"))
    {
        i += 1;
    }
    if i >= end || toks[i].kind != TokenKind::Ident {
        // `(A, B)` / `[T; N]` impl targets: skip the bracketed group.
        if i < end && toks[i].text == "(" {
            return (None, match_round(toks, i, end) + 1);
        }
        return (None, i + 1);
    }
    let mut last = toks[i].text.clone();
    i += 1;
    loop {
        if i < end && toks[i].text == "<" {
            i = skip_generics(toks, i, end);
        }
        if i + 1 < end && toks[i].text == "::" && toks[i + 1].kind == TokenKind::Ident {
            last = toks[i + 1].text.clone();
            i += 2;
        } else {
            break;
        }
    }
    (Some(last), i)
}

/// First `{` from `i` that opens an item body (skipping generic lists so a
/// `Foo<{N}>` const-generic brace cannot be mistaken for the body).
fn find_body_open(toks: &[Token], mut i: usize, end: usize) -> Option<usize> {
    while i < end {
        match toks[i].text.as_str() {
            "{" => return Some(i),
            ";" => return None,
            "<" => i = skip_generics(toks, i, end),
            _ => i += 1,
        }
    }
    None
}

/// `impl<..> Type { .. }` / `impl<..> Trait for Type { .. }`.
fn parse_impl(
    toks: &[Token],
    kw: usize,
    end: usize,
    test_ranges: &[(usize, usize)],
    out: &mut ParsedFile,
) -> usize {
    let mut i = kw + 1;
    if i < end && toks[i].text == "<" {
        i = skip_generics(toks, i, end);
    }
    let (first, after) = parse_type_path(toks, i, end);
    i = after;
    let (self_type, trait_name) = if i < end && toks[i].text == "for" {
        let (second, after) = parse_type_path(toks, i + 1, end);
        i = after;
        (second, first)
    } else {
        (first, None)
    };
    let Some(open) = find_body_open(toks, i, end) else {
        return i.max(kw + 1);
    };
    let close = rules::match_brace(toks, open).min(end.saturating_sub(1));
    let ctx = Ctx {
        self_type,
        trait_name,
    };
    parse_items(toks, open + 1, close, &ctx, test_ranges, out);
    close + 1
}

/// `trait Name { fn declared(..); fn defaulted(..) { .. } }`.
fn parse_trait(
    toks: &[Token],
    kw: usize,
    end: usize,
    test_ranges: &[(usize, usize)],
    out: &mut ParsedFile,
) -> usize {
    let name = match toks.get(kw + 1) {
        Some(t) if t.kind == TokenKind::Ident => t.text.clone(),
        _ => return kw + 1,
    };
    let Some(open) = find_body_open(toks, kw + 2, end) else {
        return kw + 2;
    };
    let close = rules::match_brace(toks, open).min(end.saturating_sub(1));
    let ctx = Ctx {
        self_type: Some(name.clone()),
        trait_name: Some(name),
    };
    parse_items(toks, open + 1, close, &ctx, test_ranges, out);
    close + 1
}

/// `fn name<..>(..) -> Ret { .. }` or `fn name(..);` (trait declaration).
/// Returns the index to resume scanning at — *inside* is handled here by the
/// caller's recursion into the body via `parse_items` (nested fns become
/// their own items).
fn parse_fn(
    toks: &[Token],
    kw: usize,
    end: usize,
    ctx: &Ctx,
    test_ranges: &[(usize, usize)],
    out: &mut ParsedFile,
) -> usize {
    // `fn(` with no name is a fn-pointer type, not an item.
    let name_tok = match toks.get(kw + 1) {
        Some(t) if t.kind == TokenKind::Ident => t,
        _ => return kw + 1,
    };
    let mut i = kw + 2;
    if i < end && toks[i].text == "<" {
        i = skip_generics(toks, i, end);
    }
    if i >= end || toks[i].text != "(" {
        return kw + 2;
    }
    i = match_round(toks, i, end) + 1;
    // Return type / where clause up to the body. `find_body_open` stops at
    // `;` for body-less declarations.
    let body = find_body_open(toks, i, end);
    let (sig_end, body_range, resume) = match body {
        Some(open) => {
            let close = rules::match_brace(toks, open).min(end.saturating_sub(1));
            (open, Some((open, close)), close + 1)
        }
        None => {
            let semi = (i..end).find(|&k| toks[k].text == ";").unwrap_or(end);
            (semi, None, semi + 1)
        }
    };
    out.fns.push(FnItem {
        name: name_tok.text.clone(),
        self_type: ctx.self_type.clone(),
        trait_name: ctx.trait_name.clone(),
        line: toks[kw].line,
        col: toks[kw].col,
        sig: (kw, sig_end),
        body: body_range,
        own_body: Vec::new(),
        is_test: test_ranges.iter().any(|&(a, b)| kw >= a && kw <= b),
        calls: Vec::new(),
    });
    // Recurse into the body so nested fns / impls become items too.
    if let Some((open, close)) = body_range {
        let ctx_inner = Ctx::default(); // nested fns are free fns
        parse_items(toks, open + 1, close, &ctx_inner, test_ranges, out);
    }
    resume
}

/// Computes `own_body` for every fn: its body minus the spans of fns nested
/// strictly inside it.
fn attach_own_bodies(_toks: &[Token], fns: &mut [FnItem]) {
    let spans: Vec<Option<(usize, usize)>> = fns
        .iter()
        .map(|f| f.body.map(|(o, c)| (f.sig.0, c.max(o))))
        .collect();
    for (idx, f) in fns.iter_mut().enumerate() {
        let Some((open, close)) = f.body else {
            continue;
        };
        // Child spans: fn items whose full span nests strictly inside.
        let mut holes: Vec<(usize, usize)> = spans
            .iter()
            .enumerate()
            .filter(|&(j, s)| {
                j != idx
                    && s.is_some_and(|(a, b)| a > open && b <= close && (a, b) != (open, close))
            })
            .filter_map(|(_, s)| *s)
            .collect();
        holes.sort_unstable();
        let mut own = Vec::new();
        let mut cursor = open;
        for (a, b) in holes {
            if a > cursor {
                own.push((cursor, a.saturating_sub(1)));
            }
            cursor = cursor.max(b + 1);
        }
        if cursor <= close {
            own.push((cursor, close));
        }
        f.own_body = own;
    }
}

/// Keywords that look like calls when followed by `(`.
const CALLISH_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "return", "loop", "let", "in", "as", "move", "ref", "mut",
    "box", "await", "else", "fn", "impl", "where", "unsafe",
];

/// Extracts call sites from a fn's own body ranges.
fn collect_calls(toks: &[Token], own_body: &[(usize, usize)]) -> Vec<CallSite> {
    let mut calls = Vec::new();
    for &(a, b) in own_body {
        for i in a..=b.min(toks.len().saturating_sub(1)) {
            let t = &toks[i];
            if t.kind != TokenKind::Ident || CALLISH_KEYWORDS.contains(&t.text.as_str()) {
                continue;
            }
            // A call is `name (` — possibly with turbofish `name::<T>(`.
            let mut after = i + 1;
            if toks.get(after).is_some_and(|n| n.text == "::")
                && toks.get(after + 1).is_some_and(|n| n.text == "<")
            {
                after = skip_generics(toks, after + 1, b + 1);
            }
            if toks.get(after).is_none_or(|n| n.text != "(") {
                continue;
            }
            let prev = i.checked_sub(1).map(|k| &toks[k]);
            let (is_method, qualifier) = match prev {
                Some(p) if p.text == "." => (true, None),
                Some(p) if p.text == "::" => {
                    let q = i
                        .checked_sub(2)
                        .map(|k| &toks[k])
                        .filter(|q| q.kind == TokenKind::Ident)
                        .map(|q| q.text.clone());
                    (false, q)
                }
                Some(p) if p.text == "fn" => continue, // definition, not call
                _ => (false, None),
            };
            calls.push(CallSite {
                name: t.text.clone(),
                qualifier,
                is_method,
                line: t.line,
                col: t.col,
            });
        }
    }
    calls
}
