#![forbid(unsafe_code)]
//! `aa-lint` — workspace-native static analysis for the anytime-anywhere
//! reproduction.
//!
//! The framework's correctness rests on invariants the compiler cannot see:
//! distance estimates are monotone upper bounds, recombination is
//! deterministic so seeded fault plans replay exactly, and rankings are
//! NaN-safe. This crate enforces those invariants mechanically on every
//! build, with its own comment/string-aware lexer (the environment is
//! offline; no syn, no regex):
//!
//! | rule | enforces |
//! |------|----------|
//! | AA01 | no `unwrap`/`expect`/`panic!`/`unreachable!` in non-test library code |
//! | AA02 | no `partial_cmp(..).unwrap()` — require `total_cmp` |
//! | AA03 | no `==`/`!=` against float literals — epsilon or integer hops |
//! | AA04 | deterministic core: no wall clocks, unseeded RNG, or hash-order iteration |
//! | AA05 | no lossy `as` casts on engine hot paths |
//! | AA06 | every library crate root declares `#![forbid(unsafe_code)]` |
//!
//! Findings are suppressed in source with
//! `// aa-lint: allow(AA04, reason)` (the reason is mandatory — AA00 flags
//! reason-less pragmas), and pre-existing findings are ratcheted through the
//! committed [`baseline`] (`lint-baseline.json`): new findings fail, counts
//! may only go down.
//!
//! Run as `cargo run -p aa-lint` from the workspace root, or through the
//! tier-1 gate in `tests/lint_gate.rs`.

pub mod baseline;
pub mod callgraph;
pub mod dataflow;
pub mod fix;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod sarif;
pub mod workspace;

pub use baseline::{Baseline, BucketDelta, RatchetReport};
pub use rules::{check_source, FileClass, Finding, RuleId};

use std::fs;
use std::path::Path;

/// Everything one workspace run produces.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// Unsuppressed findings, sorted by (file, line, col).
    pub findings: Vec<Finding>,
    /// Pragma-suppressed findings (audit trail).
    pub suppressed: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// The ratchet verdict against the committed baseline.
    pub ratchet: RatchetReport,
    /// Total findings the committed baseline admits.
    pub baseline_total: usize,
}

impl WorkspaceReport {
    /// The gate: clean when every bucket is at or below its baseline count.
    pub fn is_clean(&self) -> bool {
        self.ratchet.is_clean()
    }
}

/// Scans the workspace under `root` and ratchets against `baseline`
/// (`None` means an empty baseline: every finding is a failure).
pub fn run(root: &Path, baseline: Option<&Baseline>) -> Result<WorkspaceReport, String> {
    let files = workspace::collect(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut report = WorkspaceReport {
        files_scanned: files.len(),
        ..Default::default()
    };
    let mut graph_builder = callgraph::Builder::default();
    for (path, class) in &files {
        let src =
            fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        let lexed = lexer::lex(&src);
        let mut file_report = rules::check_lexed(class, &lexed);
        report.findings.append(&mut file_report.findings);
        report.suppressed.append(&mut file_report.suppressed);
        // Test trees never enter the call graph: their panics are assertions.
        if !class.is_test_code {
            graph_builder.add_file(class, &lexed);
        }
    }
    let graph = graph_builder.finish();
    let (mut interproc, mut interproc_suppressed) = dataflow::analyze(&graph);
    report.findings.append(&mut interproc);
    report.suppressed.append(&mut interproc_suppressed);
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    let empty = Baseline::new();
    let base = baseline.unwrap_or(&empty);
    report.ratchet = baseline::ratchet(&baseline::bucket_counts(&report.findings), base);
    report.baseline_total = baseline::total(base);
    Ok(report)
}

/// Loads `lint-baseline.json` if present.
pub fn load_baseline(path: &Path) -> Result<Option<Baseline>, String> {
    if !path.exists() {
        return Ok(None);
    }
    let src = fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    baseline::from_json(&src).map(Some)
}

/// Human-readable report (one `file:line:col RULE message` per finding).
pub fn render_human(report: &WorkspaceReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "{}:{}:{}: {} {}\n",
            f.file,
            f.line,
            f.col,
            f.rule.as_str(),
            f.message
        ));
    }
    for d in &report.ratchet.regressions {
        out.push_str(&format!(
            "RATCHET {} {}: {} findings exceed the baseline of {}\n",
            d.rule, d.file, d.current, d.baseline
        ));
    }
    for d in &report.ratchet.stale {
        out.push_str(&format!(
            "stale baseline {} {}: {} admitted, {} found — tighten with --write-baseline\n",
            d.rule, d.file, d.baseline, d.current
        ));
    }
    out.push_str(&format!(
        "{} files scanned; {} findings ({} allowed by baseline), {} suppressed by pragma — {}\n",
        report.files_scanned,
        report.findings.len(),
        report.baseline_total,
        report.suppressed.len(),
        if report.is_clean() { "clean" } else { "FAIL" }
    ));
    out
}

/// Machine-readable report for CI artifacts.
pub fn render_json(report: &WorkspaceReport) -> String {
    use baseline::quote;
    let finding_json = |f: &Finding| {
        let symbol = match &f.symbol {
            Some(s) => format!(", \"symbol\": {}", quote(s)),
            None => String::new(),
        };
        format!(
            "{{\"rule\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"message\": {}{symbol}}}",
            quote(f.rule.as_str()),
            quote(&f.file),
            f.line,
            f.col,
            quote(&f.message)
        )
    };
    let delta_json = |d: &BucketDelta| {
        format!(
            "{{\"rule\": {}, \"file\": {}, \"baseline\": {}, \"current\": {}}}",
            quote(&d.rule),
            quote(&d.file),
            d.baseline,
            d.current
        )
    };
    let list = |items: Vec<String>| {
        if items.is_empty() {
            "[]".to_string()
        } else {
            format!("[\n    {}\n  ]", items.join(",\n    "))
        }
    };
    format!(
        "{{\n  \"clean\": {},\n  \"files_scanned\": {},\n  \"baseline_total\": {},\n  \
         \"findings\": {},\n  \"suppressed\": {},\n  \"regressions\": {},\n  \"stale\": {}\n}}\n",
        report.is_clean(),
        report.files_scanned,
        report.baseline_total,
        list(report.findings.iter().map(finding_json).collect()),
        list(report.suppressed.iter().map(finding_json).collect()),
        list(report.ratchet.regressions.iter().map(delta_json).collect()),
        list(report.ratchet.stale.iter().map(delta_json).collect()),
    )
}
