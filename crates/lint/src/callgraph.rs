//! Workspace-wide symbol table and call graph.
//!
//! Every parsed fn becomes a node carrying the *direct* facts the dataflow
//! pass seeds from: unsuppressed panic sites (AA07), nondeterminism sources
//! (AA08), and durability-ordering facts (AA09). Edges are resolved
//! conservatively:
//!
//! * `Type::name(..)` / `Trait::name(..)` → every fn `name` whose impl type
//!   or trait matches the qualifier (`self`/`Self` use the caller's type);
//! * `recv.name(..)` → every impl method called `name` anywhere in the
//!   workspace (trait objects and generic receivers cannot be narrowed
//!   without type inference);
//! * `name(..)` → every free fn called `name`.
//!
//! Callees that resolve to nothing are assumed clean: they are std/vendor
//! fns the analyzer cannot see. That is the documented soundness tradeoff —
//! the graph over-approximates within the workspace and under-approximates
//! outside it, which is the right polarity for a ratcheted lint (workspace
//! regressions are caught; std's panics are the caller's contract to read).
//! `use` imports from `std`/`core`/`alloc` prune false edges when a
//! workspace fn shares a name with an imported std item.

use crate::lexer::{Lexed, TokenKind};
use crate::parser::{self, FnItem};
use crate::rules::{self, FileClass, RuleId};
use std::collections::BTreeMap;

/// A direct fact site inside a fn body.
#[derive(Debug, Clone)]
pub struct Site {
    /// What was found (`.unwrap()`, `panic!`, `indexing`, `Instant`, ...).
    pub what: String,
    pub line: u32,
    pub col: u32,
}

/// One fn in the workspace graph.
#[derive(Debug)]
pub struct FnNode {
    pub file: String,
    pub symbol: String,
    pub name: String,
    pub self_type: Option<String>,
    pub trait_name: Option<String>,
    pub line: u32,
    pub col: u32,
    pub crate_name: Option<String>,
    pub deterministic_core: bool,
    /// Crate whose contract is anytime availability — AA07 reports here.
    pub availability_critical: bool,
    pub allow_panics: bool,
    pub is_test: bool,
    /// Unsuppressed panic sources in the body (AA07 seeds).
    pub panic_sites: Vec<Site>,
    /// True when at least one panic site is of the kind AA01 already
    /// reports (unwrap/expect/panic-macro) — AA07 then skips the direct
    /// finding and only contributes propagation.
    pub panic_reported_by_aa01: bool,
    /// Unsuppressed nondeterminism sources in the body (AA08 seeds).
    pub taint_sites: Vec<Site>,
    /// Fn-level `allow(AA07/AA08/AA09)` pragmas (pragma on the `fn` line or
    /// the line above): the fn is vetted, and propagation stops here.
    pub blocked: Vec<RuleId>,
    /// AA09 local facts (only populated for durability-relevant crates).
    pub raw_write_sites: Vec<Site>,
    pub flush_before_commit: Option<Site>,
    pub ack_without_append: Option<Site>,
    /// Would-be direct findings silenced by a site-level pragma, for the
    /// suppression audit trail.
    pub suppressed_sites: Vec<(RuleId, Site)>,
}

/// The resolved workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub nodes: Vec<FnNode>,
    /// `edges[caller] = sorted, deduped callee indices`.
    pub edges: Vec<Vec<usize>>,
}

/// Crates whose file writes must go through `atomic_write_file` (AA09).
const DURABILITY_CRATES: &[&str] = &["durable", "cli", "serve"];

/// Crates whose contract is anytime availability: a panic anywhere in their
/// call closure aborts a superstep (engine), a recovery (durable), or a
/// resident query loop (serve). AA07 findings are *reported* only for fns in
/// these crates; panics elsewhere still seed propagation (a helper crate's
/// unwrap surfaces at the core fn that reaches it) and are AA01's direct
/// business at the leaf.
const AVAILABILITY_CRATES: &[&str] = &["core", "runtime", "durable", "serve", "query"];

/// Method names never resolved to workspace impls. These are the ubiquitous
/// std-container vocabulary: nearly every `.len()`/`.push(..)` in the
/// workspace targets a `Vec`/`BTreeMap`, and resolving them conservatively
/// to every same-named workspace impl would weld the graph into one giant
/// cone. The cost is a missed edge when a *workspace* `len()` panics — which
/// AA01/AA07 still catch directly at that fn's own site.
const STD_VOCAB_METHODS: &[&str] = &[
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "contains",
    "contains_key",
    "clear",
    "clone",
    "default",
    "entry",
    "extend",
    "drain",
    "as_ref",
    "as_mut",
    "as_str",
    "to_string",
    "to_owned",
    "into",
    "from",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "next",
];

/// Accumulates parsed files, then resolves the graph.
#[derive(Default)]
pub struct Builder {
    nodes: Vec<FnNode>,
    /// Per-node parse leftovers needed for edge resolution.
    calls: Vec<Vec<parser::CallSite>>,
    /// Per-node file index into `imports`.
    file_of: Vec<usize>,
    imports: Vec<BTreeMap<String, String>>,
}

impl Builder {
    /// Parses one non-test file into graph nodes.
    pub fn add_file(&mut self, class: &FileClass, lexed: &Lexed) {
        let parsed = parser::parse(&lexed.tokens);
        let pragmas = rules::pragma_lines(&lexed.comments);
        let file_idx = self.imports.len();
        self.imports.push(parsed.imports);
        let durability = class
            .crate_name
            .as_deref()
            .is_some_and(|c| DURABILITY_CRATES.contains(&c));
        for f in parsed.fns {
            let mut node = FnNode {
                file: class.rel_path.clone(),
                symbol: f.symbol(),
                name: f.name.clone(),
                self_type: f.self_type.clone(),
                trait_name: f.trait_name.clone(),
                line: f.line,
                col: f.col,
                crate_name: class.crate_name.clone(),
                deterministic_core: class.deterministic_core,
                availability_critical: class
                    .crate_name
                    .as_deref()
                    .is_some_and(|c| AVAILABILITY_CRATES.contains(&c)),
                allow_panics: class.allow_panics,
                is_test: f.is_test || class.is_test_code,
                panic_sites: Vec::new(),
                panic_reported_by_aa01: false,
                taint_sites: Vec::new(),
                blocked: fn_level_blocks(&pragmas, f.line),
                raw_write_sites: Vec::new(),
                flush_before_commit: None,
                ack_without_append: None,
                suppressed_sites: Vec::new(),
            };
            scan_panic_sites(lexed, &f, &pragmas, class.is_hot_path, &mut node);
            scan_taint_sites(lexed, &f, &pragmas, &mut node);
            if durability {
                scan_durability(lexed, &f, &pragmas, &mut node);
            }
            self.nodes.push(node);
            self.calls.push(f.calls);
            self.file_of.push(file_idx);
        }
    }

    /// Resolves every call site to node edges.
    pub fn finish(self) -> CallGraph {
        // Symbol tables. Methods keyed by name; typed lookups keyed by
        // (impl type or trait, name); free fns keyed by name.
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut typed: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, n) in self.nodes.iter().enumerate() {
            match (&n.self_type, &n.trait_name) {
                (Some(t), tr) => {
                    methods.entry(&n.name).or_default().push(i);
                    typed.entry((t.as_str(), &n.name)).or_default().push(i);
                    if let Some(tr) = tr {
                        if tr != t {
                            typed.entry((tr.as_str(), &n.name)).or_default().push(i);
                        }
                    }
                }
                (None, _) => free.entry(&n.name).or_default().push(i),
            }
        }
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for (caller, calls) in self.calls.iter().enumerate() {
            let imports = &self.imports[self.file_of[caller]];
            let mut out: Vec<usize> = Vec::new();
            for c in calls {
                // A callee imported from std/core/alloc shadows any
                // same-named workspace symbol in this file.
                if c.qualifier.is_none()
                    && imports
                        .get(&c.name)
                        .is_some_and(|path| is_external_path(path))
                {
                    continue;
                }
                match (&c.qualifier, c.is_method) {
                    (_, true) => {
                        if STD_VOCAB_METHODS.contains(&c.name.as_str()) {
                            continue;
                        }
                        if let Some(v) = methods.get(c.name.as_str()) {
                            out.extend_from_slice(v);
                        }
                    }
                    (Some(q), false) => {
                        let q_name = match q.as_str() {
                            // `Self::f()` / `self::f()` resolve in the
                            // caller's own impl.
                            "Self" | "self" => {
                                self.nodes[caller].self_type.clone().unwrap_or_default()
                            }
                            other => {
                                if imports.get(other).is_some_and(|p| is_external_path(p)) {
                                    continue;
                                }
                                other.to_string()
                            }
                        };
                        if let Some(v) = typed.get(&(q_name.as_str(), c.name.as_str())) {
                            out.extend_from_slice(v);
                        } else if q_name.chars().next().is_some_and(|c| c.is_lowercase()) {
                            // `module::helper()` — fall back to free fns by
                            // name (the module path is not tracked).
                            if let Some(v) = free.get(c.name.as_str()) {
                                out.extend_from_slice(v);
                            }
                        }
                    }
                    (None, false) => {
                        // Bare calls resolve like Rust scoping does: fns in
                        // the same file first (module-private helpers), the
                        // workspace only as a fallback (one `use`-imported
                        // definition elsewhere). Without the file-first
                        // step, every test module's private `engine()`
                        // helper would cross-link to all of its namesakes.
                        if let Some(v) = free.get(c.name.as_str()) {
                            let same_file: Vec<usize> = v
                                .iter()
                                .copied()
                                .filter(|&j| self.file_of[j] == self.file_of[caller])
                                .collect();
                            if same_file.is_empty() {
                                out.extend_from_slice(v);
                            } else {
                                out.extend_from_slice(&same_file);
                            }
                        }
                    }
                }
            }
            out.sort_unstable();
            out.dedup();
            edges[caller] = out;
        }
        CallGraph {
            nodes: self.nodes,
            edges,
        }
    }
}

fn is_external_path(path: &str) -> bool {
    matches!(
        path.split("::").next().unwrap_or(""),
        "std" | "core" | "alloc" | "rayon" | "rand" | "rand_chacha" | "proptest"
    )
}

/// Fn-level pragmas: an interprocedural `allow` on the `fn` line or the line
/// directly above vets the whole fn and stops propagation through it.
fn fn_level_blocks(pragmas: &[(RuleId, u32)], fn_line: u32) -> Vec<RuleId> {
    pragmas
        .iter()
        .filter(|(r, l)| {
            matches!(r, RuleId::AA07 | RuleId::AA08 | RuleId::AA09)
                && (*l == fn_line || l + 1 == fn_line)
        })
        .map(|(r, _)| *r)
        .collect()
}

fn site_suppressed(pragmas: &[(RuleId, u32)], rules_ok: &[RuleId], line: u32) -> bool {
    pragmas
        .iter()
        .any(|(r, l)| rules_ok.contains(r) && (*l == line || l + 1 == line))
}

/// Keywords before `[` that make it a pattern/type position, not indexing.
const NOT_INDEXING_PREV: &[&str] = &[
    "let", "in", "return", "else", "match", "mut", "ref", "box", "move", "as", "const", "static",
    "if", "while", "for", "impl", "dyn", "where",
];

/// Direct panic sources: `.unwrap()`/`.expect(`, panic-family macros, and —
/// on hot-path files only — indexing expressions. Indexing is ubiquitous and
/// usually bounds-correct by construction, so treating every `xs[i]` in the
/// workspace as a panic source drowns the signal; on the availability-critical
/// hot path (the superstep inner loops), one out-of-bounds hit still aborts a
/// whole recombination round, so there it seeds. Sites under a reasoned
/// `allow(AA01)`/`allow(AA07)` pragma do not seed (the pragma's reason asserts
/// the invariant that makes the site unreachable or infallible).
fn scan_panic_sites(
    lexed: &Lexed,
    f: &FnItem,
    pragmas: &[(RuleId, u32)],
    index_seeds: bool,
    node: &mut FnNode,
) {
    let toks = &lexed.tokens;
    let ok = [RuleId::AA01, RuleId::AA07];
    for &(a, b) in &f.own_body {
        for i in a..=b.min(toks.len().saturating_sub(1)) {
            let t = &toks[i];
            let next = toks.get(i + 1).map(|n| n.text.as_str());
            let prev = i.checked_sub(1).map(|k| &toks[k]);
            let site = |what: &str| Site {
                what: what.to_string(),
                line: t.line,
                col: t.col,
            };
            let (found, aa01_style): (Option<Site>, bool) = if t.kind == TokenKind::Ident
                && matches!(t.text.as_str(), "unwrap" | "expect")
                && prev.is_some_and(|p| p.text == ".")
                && next == Some("(")
            {
                (Some(site(&format!(".{}()", t.text))), true)
            } else if t.kind == TokenKind::Ident
                && rules::PANIC_MACROS.contains(&t.text.as_str())
                && next == Some("!")
            {
                (Some(site(&format!("{}!", t.text))), true)
            } else if index_seeds
                && t.kind == TokenKind::Punct
                && t.text == "["
                && prev.is_some_and(|p| {
                    matches!(p.text.as_str(), ")" | "]")
                        || (p.kind == TokenKind::Ident
                            && !NOT_INDEXING_PREV.contains(&p.text.as_str()))
                })
            {
                (Some(site("indexing")), false)
            } else {
                (None, false)
            };
            let Some(s) = found else { continue };
            if site_suppressed(pragmas, &ok, s.line) {
                node.suppressed_sites.push((RuleId::AA07, s));
            } else {
                node.panic_reported_by_aa01 |= aa01_style;
                node.panic_sites.push(s);
            }
        }
    }
}

/// Direct nondeterminism sources: wall-clock types, unseeded RNG calls,
/// thread ids, and iteration over hash-ordered collections (matched via the
/// same file-local variable heuristic AA04 uses). `allow(AA04)`/`allow(AA08)`
/// pragmas vet a site.
fn scan_taint_sites(lexed: &Lexed, f: &FnItem, pragmas: &[(RuleId, u32)], node: &mut FnNode) {
    let toks = &lexed.tokens;
    let ok = [RuleId::AA04, RuleId::AA08];
    // File-local hash-typed variable names (`rows: HashMap<..>` / `let m =
    // HashMap::new()`), shared with the AA04 heuristic.
    let mut hash_vars: Vec<&str> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokenKind::Ident && rules::HASH_TYPES.contains(&t.text.as_str()) {
            let named = i
                .checked_sub(2)
                .and_then(|k| toks.get(k))
                .filter(|n| n.kind == TokenKind::Ident)
                .filter(|_| matches!(toks[i - 1].text.as_str(), ":" | "="));
            if let Some(name) = named {
                if !hash_vars.contains(&name.text.as_str()) {
                    hash_vars.push(&name.text);
                }
            }
        }
    }
    for &(a, b) in &f.own_body {
        for i in a..=b.min(toks.len().saturating_sub(1)) {
            let t = &toks[i];
            if t.kind != TokenKind::Ident {
                continue;
            }
            let next = toks.get(i + 1).map(|n| n.text.as_str());
            let name = t.text.as_str();
            let what: Option<String> = if rules::WALL_CLOCK_TYPES.contains(&name) {
                Some(name.to_string())
            } else if rules::UNSEEDED_RNG.contains(&name) && next == Some("(") {
                Some(format!("{name}()"))
            } else if name == "ThreadId"
                || (name == "thread"
                    && next == Some("::")
                    && toks.get(i + 2).is_some_and(|n| n.text == "current"))
            {
                Some("thread id".to_string())
            } else if hash_vars.contains(&name) {
                let method_leak = next == Some(".")
                    && toks
                        .get(i + 2)
                        .is_some_and(|m| rules::ORDER_LEAK_METHODS.contains(&m.text.as_str()))
                    && toks.get(i + 3).is_some_and(|p| p.text == "(");
                let for_leak = {
                    let p1 = i.checked_sub(1).and_then(|k| toks.get(k));
                    let p2 = i.checked_sub(2).and_then(|k| toks.get(k));
                    matches!(p1, Some(p) if p.text == "in")
                        || (matches!(p1, Some(p) if p.text == "&")
                            && matches!(p2, Some(p) if p.text == "in"))
                };
                (method_leak || for_leak).then(|| format!("hash-order iteration over `{name}`"))
            } else {
                None
            };
            let Some(what) = what else { continue };
            let s = Site {
                what,
                line: t.line,
                col: t.col,
            };
            if site_suppressed(pragmas, &ok, s.line) {
                node.suppressed_sites.push((RuleId::AA08, s));
            } else {
                node.taint_sites.push(s);
            }
        }
    }
}

/// AA09 local facts: raw `File::create`/`OpenOptions::new` writes outside
/// `atomic_write_file`; a barrier `.flush(..)` ordered before the
/// group-commit `.commit(..)` in fns that do both; `WriteOutcome::Logged`
/// constructed in a `-> WriteOutcome` fn with no `.append(..)` before it.
fn scan_durability(lexed: &Lexed, f: &FnItem, pragmas: &[(RuleId, u32)], node: &mut FnNode) {
    let toks = &lexed.tokens;
    let ok = [RuleId::AA09];
    let mut first_commit: Option<usize> = None;
    let mut first_flush: Option<usize> = None;
    let mut first_append: Option<usize> = None;
    let mut first_logged: Option<usize> = None;
    for &(a, b) in &f.own_body {
        for i in a..=b.min(toks.len().saturating_sub(1)) {
            let t = &toks[i];
            if t.kind != TokenKind::Ident {
                continue;
            }
            let prev = i.checked_sub(1).map(|k| toks[k].text.as_str());
            let next = toks.get(i + 1).map(|n| n.text.as_str());
            let is_method_call = prev == Some(".") && next == Some("(");
            match t.text.as_str() {
                "create" | "new"
                    if prev == Some("::")
                        && next == Some("(")
                        && i.checked_sub(2).is_some_and(|k| {
                            matches!(toks[k].text.as_str(), "File" | "OpenOptions")
                        })
                        && f.name != "atomic_write_file" =>
                {
                    let s = Site {
                        what: format!("{}::{}", toks[i - 2].text, t.text),
                        line: t.line,
                        col: t.col,
                    };
                    if site_suppressed(pragmas, &ok, s.line) {
                        node.suppressed_sites.push((RuleId::AA09, s));
                    } else {
                        node.raw_write_sites.push(s);
                    }
                }
                "commit" if is_method_call => {
                    first_commit.get_or_insert(i);
                }
                "flush" if is_method_call => {
                    first_flush.get_or_insert(i);
                }
                "append" if is_method_call => {
                    first_append.get_or_insert(i);
                }
                "Logged" if prev == Some("::") => {
                    first_logged.get_or_insert(i);
                }
                _ => {}
            };
        }
    }
    if let (Some(c), Some(fl)) = (first_commit, first_flush) {
        if fl < c {
            let t = &toks[fl];
            let s = Site {
                what: "`.flush(..)` before the group-commit `.commit(..)`".into(),
                line: t.line,
                col: t.col,
            };
            if site_suppressed(pragmas, &ok, s.line) {
                node.suppressed_sites.push((RuleId::AA09, s));
            } else {
                node.flush_before_commit = Some(s);
            }
        }
    }
    // Only fns *returning* WriteOutcome emit acks; fns that merely match on
    // one (clients, tests, renderers) are exempt.
    let returns_outcome = (f.sig.0..f.sig.1).any(|k| toks[k].text == "WriteOutcome");
    if returns_outcome {
        if let Some(lg) = first_logged {
            if first_append.is_none_or(|ap| ap > lg) {
                let t = &toks[lg];
                let s = Site {
                    what: "`WriteOutcome::Logged` ack emitted with no prior `.append(..)`".into(),
                    line: t.line,
                    col: t.col,
                };
                if site_suppressed(pragmas, &ok, s.line) {
                    node.suppressed_sites.push((RuleId::AA09, s));
                } else {
                    node.ack_without_append = Some(s);
                }
            }
        }
    }
}
