//! SARIF 2.1.0 output, hand-rolled (the workspace is offline; no serde).
//!
//! The emitted document is the minimal subset GitHub code scanning ingests:
//! one run, a `tool.driver` with the full rule table (id + rationale), and
//! one `result` per unsuppressed finding with a physical location. Findings
//! admitted by the committed baseline are `warning` level — pre-existing,
//! ratcheted debt; ratchet regressions are separately visible because the
//! CLI exits non-zero and the JSON report lists them.

use crate::baseline::quote;
use crate::rules::RuleId;
use crate::WorkspaceReport;

/// Renders a [`WorkspaceReport`] as a SARIF 2.1.0 document.
pub fn render(report: &WorkspaceReport) -> String {
    let rules: Vec<String> = RuleId::ALL
        .iter()
        .map(|r| {
            format!(
                "{{\"id\": {id}, \"shortDescription\": {{\"text\": {desc}}}, \
                 \"helpUri\": \"https://github.com/aa-repro/aa/blob/main/DESIGN.md\"}}",
                id = quote(r.as_str()),
                desc = quote(r.rationale()),
            )
        })
        .collect();
    let results: Vec<String> = report
        .findings
        .iter()
        .map(|f| {
            let mut extra = String::new();
            if let Some(sym) = &f.symbol {
                extra = format!(
                    ", \"partialFingerprints\": {{\"aaLintSymbol\": {}}}",
                    quote(&format!("{}#{sym}", f.file))
                );
            }
            format!(
                "{{\"ruleId\": {rule}, \"level\": \"warning\", \
                 \"message\": {{\"text\": {msg}}}, \
                 \"locations\": [{{\"physicalLocation\": {{\
                 \"artifactLocation\": {{\"uri\": {uri}}}, \
                 \"region\": {{\"startLine\": {line}, \"startColumn\": {col}}}}}}}]{extra}}}",
                rule = quote(f.rule.as_str()),
                msg = quote(&f.message),
                uri = quote(&f.file),
                line = f.line,
                col = f.col,
            )
        })
        .collect();
    let list = |items: &[String], indent: &str| {
        if items.is_empty() {
            "[]".to_string()
        } else {
            format!(
                "[\n{indent}  {}\n{indent}]",
                items.join(&format!(",\n{indent}  "))
            )
        }
    };
    format!(
        "{{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {{\n      \"tool\": {{\n        \
         \"driver\": {{\n          \"name\": \"aa-lint\",\n          \
         \"informationUri\": \"https://github.com/aa-repro/aa\",\n          \
         \"rules\": {rules}\n        }}\n      }},\n      \
         \"results\": {results}\n    }}\n  ]\n}}\n",
        rules = list(&rules, "          "),
        results = list(&results, "      "),
    )
}
