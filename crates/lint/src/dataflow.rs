//! Fixpoint dataflow over the workspace call graph, and the AA07–AA09 rule
//! passes built on it.
//!
//! The core operation is reverse reachability: a bit seeded at fns with a
//! direct fact (a panic site, a nondeterminism source) propagates to every
//! caller, except through *blocked* fns — fns carrying a reasoned fn-level
//! pragma, whose reason asserts the invariant that contains the fact. One
//! well-placed pragma at a shared kernel therefore collapses the whole
//! upward closure, which is what keeps AA07 findings proportional to real
//! debt instead of to call-graph fan-in.

use crate::callgraph::{CallGraph, FnNode};
use crate::rules::{Finding, RuleId};

/// Reverse-reachability fixpoint: `bit(f) = !blocked(f) && (seed(f) || any
/// callee bit set)`. Returns one bit per node.
pub fn reach(graph: &CallGraph, seed: &[bool], blocked: &[bool]) -> Vec<bool> {
    let n = graph.nodes.len();
    // Reverse adjacency: who calls me.
    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (caller, callees) in graph.edges.iter().enumerate() {
        for &callee in callees {
            callers[callee].push(caller);
        }
    }
    let mut bit = vec![false; n];
    let mut work: Vec<usize> = (0..n).filter(|&i| seed[i] && !blocked[i]).collect();
    for &i in &work {
        bit[i] = true;
    }
    while let Some(i) = work.pop() {
        for &caller in &callers[i] {
            if !bit[caller] && !blocked[caller] {
                bit[caller] = true;
                work.push(caller);
            }
        }
    }
    bit
}

/// All interprocedural findings: `(reported, suppressed)`.
pub fn analyze(graph: &CallGraph) -> (Vec<Finding>, Vec<Finding>) {
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    check_aa07(graph, &mut findings, &mut suppressed);
    check_aa08(graph, &mut findings);
    check_aa09(graph, &mut findings);
    // Site-level suppressions collected while scanning become the audit
    // trail, one entry per silenced site.
    for n in &graph.nodes {
        for (rule, s) in &n.suppressed_sites {
            suppressed.push(interproc_finding(
                *rule,
                n,
                format!("suppressed at {}:{}: {}", s.line, s.col, s.what),
            ));
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    (findings, suppressed)
}

fn interproc_finding(rule: RuleId, node: &FnNode, message: String) -> Finding {
    Finding {
        rule,
        file: node.file.clone(),
        line: node.line,
        col: node.col,
        message,
        symbol: Some(node.symbol.clone()),
    }
}

fn blocked_for(graph: &CallGraph, rule: RuleId) -> Vec<bool> {
    graph
        .nodes
        .iter()
        .map(|n| n.blocked.contains(&rule))
        .collect()
}

/// AA07: transitive panic reachability. A non-test fn in an
/// availability-critical crate whose closure reaches an unsuppressed panic
/// site is reported once, at the fn, with a witness. Panics seed everywhere
/// (a `graph`-crate unwrap still surfaces at the core fn that reaches it),
/// but only availability-critical fns are reported — elsewhere the leaf site
/// is AA01's direct finding. Fns whose *direct* sites AA01 already reports
/// are skipped (no double-reporting) but still propagate to their callers.
fn check_aa07(graph: &CallGraph, out: &mut Vec<Finding>, suppressed: &mut Vec<Finding>) {
    let seed: Vec<bool> = graph
        .nodes
        .iter()
        .map(|n| !n.panic_sites.is_empty())
        .collect();
    let blocked = blocked_for(graph, RuleId::AA07);
    let bit = reach(graph, &seed, &blocked);
    for (i, n) in graph.nodes.iter().enumerate() {
        if n.is_test || n.allow_panics || !n.availability_critical {
            continue;
        }
        if blocked[i] {
            // A vetted fn that would otherwise seed goes to the audit trail.
            if seed[i] {
                suppressed.push(interproc_finding(
                    RuleId::AA07,
                    n,
                    format!("`{}` vetted by fn-level pragma", n.symbol),
                ));
            }
            continue;
        }
        if !bit[i] {
            continue;
        }
        if seed[i] {
            if n.panic_reported_by_aa01 {
                continue; // AA01 already points at the leaf site
            }
            // Direct but not AA01-visible: indexing.
            let s = &n.panic_sites[0];
            out.push(interproc_finding(
                RuleId::AA07,
                n,
                format!(
                    "`{}` can panic: {} at line {} (anytime availability: \
                     return an error or document the bound with allow(AA07, ..))",
                    n.symbol, s.what, s.line
                ),
            ));
            continue;
        }
        // Transitive only: name the first panicking callee as witness.
        let witness = graph.edges[i]
            .iter()
            .find(|&&c| bit[c])
            .map(|&c| graph.nodes[c].symbol.clone())
            .unwrap_or_else(|| "a callee".into());
        out.push(interproc_finding(
            RuleId::AA07,
            n,
            format!(
                "`{}` can reach a panic through `{witness}` (anytime availability: \
                 the whole call closure must degrade, not abort)",
                n.symbol
            ),
        ));
    }
}

/// AA08: nondeterminism taint. Reported only for deterministic-core fns
/// whose taint arrives *through a callee* — a direct source in core is
/// AA04's finding already.
fn check_aa08(graph: &CallGraph, out: &mut Vec<Finding>) {
    let seed: Vec<bool> = graph
        .nodes
        .iter()
        .map(|n| !n.taint_sites.is_empty())
        .collect();
    let blocked = blocked_for(graph, RuleId::AA08);
    let bit = reach(graph, &seed, &blocked);
    for (i, n) in graph.nodes.iter().enumerate() {
        if !n.deterministic_core || n.is_test || blocked[i] || !bit[i] {
            continue;
        }
        if seed[i] {
            continue; // direct source: AA04 territory
        }
        let witness = graph.edges[i]
            .iter()
            .find(|&&c| bit[c])
            .map(|&c| {
                let cn = &graph.nodes[c];
                match cn.taint_sites.first() {
                    Some(s) => format!("`{}` ({})", cn.symbol, s.what),
                    None => format!("`{}`", cn.symbol),
                }
            })
            .unwrap_or_else(|| "a callee".into());
        out.push(interproc_finding(
            RuleId::AA08,
            n,
            format!(
                "`{}` in the deterministic core reaches a nondeterminism source \
                 through {witness} — sim-as-oracle replay will diverge",
                n.symbol
            ),
        ));
    }
}

/// AA09: durability ordering. Purely local facts gathered by the graph
/// builder, reported per fn so the baseline ratchets per symbol.
fn check_aa09(graph: &CallGraph, out: &mut Vec<Finding>) {
    for n in &graph.nodes {
        if n.is_test {
            continue;
        }
        for s in &n.raw_write_sites {
            out.push(interproc_finding(
                RuleId::AA09,
                n,
                format!(
                    "`{}` writes via {} at line {}: go through `atomic_write_file` \
                     (write→fsync→rename) or carry allow(AA09, ..) naming the contract",
                    n.symbol, s.what, s.line
                ),
            ));
        }
        if let Some(s) = &n.flush_before_commit {
            out.push(interproc_finding(
                RuleId::AA09,
                n,
                format!(
                    "`{}`: {} at line {} — state mutated before the WAL group-commit \
                     marker is durable",
                    n.symbol, s.what, s.line
                ),
            ));
        }
        if let Some(s) = &n.ack_without_append {
            out.push(interproc_finding(
                RuleId::AA09,
                n,
                format!("`{}`: {} at line {}", n.symbol, s.what, s.line),
            ));
        }
    }
}
