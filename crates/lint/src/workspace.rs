//! Workspace walking and file classification.
//!
//! Classification decides which rules apply where:
//!
//! * `vendor/` (offline dependency stand-ins), `target/`, and the lint
//!   crate's own rule fixtures are never scanned;
//! * `tests/`, `benches/`, `examples/` trees are test code (AA01–AA03 exempt
//!   — in-file `#[cfg(test)]` modules are handled separately, by span);
//! * the `bench` and `cli` crates may panic (operator tooling, AA01 exempt);
//! * `aa-core` and `aa-runtime` form the deterministic core (AA04);
//! * the recombination hot path (engine/proc-state/distance-vector/dynamic
//!   kernels plus the simulated cluster) gets the cast rule (AA05);
//! * every `crates/*/src/lib.rs` is a library root (AA06).

use crate::rules::FileClass;
use std::fs;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", ".github", "data", "fixtures"];

/// Crates whose binaries/utilities may panic on broken input (AA01 exempt).
const PANICKY_CRATES: &[&str] = &["bench", "cli"];

/// Crates forming the deterministic replay core (AA04 applies). `durable`
/// belongs here: recovery replay must be a pure function of the bytes on
/// disk, so wall clocks and ambient randomness are banned from it too.
const DETERMINISTIC_CORE: &[&str] = &["core", "runtime", "durable", "query"];

/// Engine hot-path files (AA05 applies), workspace-relative.
const HOT_PATHS: &[&str] = &[
    "crates/core/src/engine.rs",
    "crates/core/src/proc_state.rs",
    "crates/core/src/dv.rs",
    "crates/core/src/dynamic.rs",
    "crates/runtime/src/cluster.rs",
    "crates/runtime/src/fault.rs",
];

/// Collects every `.rs` file under `root` that the analyzer owns, classified.
/// Paths come back sorted so reports and baselines are deterministic.
pub fn collect(root: &Path) -> std::io::Result<Vec<(PathBuf, FileClass)>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort_by(|a, b| a.1.rel_path.cmp(&b.1.rel_path));
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(PathBuf, FileClass)>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = rel_path(root, &path);
            out.push((path, classify(&rel)));
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Classifies a workspace-relative path.
pub fn classify(rel: &str) -> FileClass {
    let crate_name = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .map(str::to_string);
    let in_dir = |d: &str| rel.starts_with(&format!("{d}/")) || rel.contains(&format!("/{d}/"));
    let is_test_code = in_dir("tests") || in_dir("benches") || in_dir("examples");
    let allow_panics = crate_name
        .as_deref()
        .is_some_and(|c| PANICKY_CRATES.contains(&c));
    FileClass {
        rel_path: rel.to_string(),
        is_test_code,
        allow_panics,
        is_hot_path: HOT_PATHS.contains(&rel),
        is_lib_root: crate_name.is_some() && rel.ends_with("/src/lib.rs"),
        deterministic_core: crate_name
            .as_deref()
            .is_some_and(|c| DETERMINISTIC_CORE.contains(&c)),
        crate_name,
    }
}
