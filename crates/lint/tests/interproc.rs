//! Interprocedural rule self-tests: AA07 (transitive panic reachability),
//! AA08 (nondeterminism taint), AA09 (durability ordering), plus the
//! call-graph torture corpus (trait objects, generic impls, shadowed
//! imports, same-file-first bare calls, closures).
//!
//! Each test builds a miniature workspace by feeding fixture files through
//! the same [`Builder`] → [`dataflow::analyze`] pipeline `aa_lint::run`
//! uses, with hand-picked [`FileClass`] values standing in for the walker's
//! classification.

use aa_lint::callgraph::{Builder, CallGraph};
use aa_lint::{dataflow, lexer, FileClass, Finding, RuleId};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// A deterministic-core file in `crates/<crate_name>/src/`.
fn class(name: &str, crate_name: &str) -> FileClass {
    FileClass {
        rel_path: format!("crates/{crate_name}/src/{name}"),
        crate_name: Some(crate_name.to_string()),
        deterministic_core: true,
        ..FileClass::default()
    }
}

/// Builds the graph and runs the dataflow pass over the given files.
fn analyze(files: &[(FileClass, String)]) -> (CallGraph, Vec<Finding>, Vec<Finding>) {
    let mut builder = Builder::default();
    for (c, src) in files {
        let lexed = lexer::lex(src);
        builder.add_file(c, &lexed);
    }
    let graph = builder.finish();
    let (findings, suppressed) = dataflow::analyze(&graph);
    (graph, findings, suppressed)
}

fn rule_symbols(findings: &[Finding], rule: RuleId) -> Vec<String> {
    let mut v: Vec<String> = findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.symbol.clone().unwrap_or_default())
        .collect();
    v.sort();
    v
}

fn node<'g>(graph: &'g CallGraph, symbol: &str) -> (usize, &'g aa_lint::callgraph::FnNode) {
    graph
        .nodes
        .iter()
        .enumerate()
        .find(|(_, n)| n.symbol == symbol)
        .unwrap_or_else(|| panic!("no node `{symbol}`"))
}

// ---------------------------------------------------------------- AA07 ----

#[test]
fn aa07_reports_the_transitive_closure_once_per_fn() {
    let files = [(class("aa07_bad.rs", "core"), fixture("aa07_bad.rs"))];
    let (_, findings, _) = analyze(&files);
    // The AA01-visible leaf (`row_weight`) is skipped; both callers above it
    // are reported; `untouched` is not.
    assert_eq!(
        rule_symbols(&findings, RuleId::AA07),
        vec!["Engine::relax_round", "Engine::superstep"],
        "{findings:#?}"
    );
    // Every finding names a witness in its message.
    assert!(findings
        .iter()
        .all(|f| f.message.contains("can reach a panic through")));
}

#[test]
fn aa07_reports_only_availability_critical_crates() {
    // Same call shape, but in a crate whose contract is not anytime
    // availability: the leaf panic is AA01's business, nothing for AA07.
    let files = [(class("aa07_bad.rs", "partition"), fixture("aa07_bad.rs"))];
    let (_, findings, _) = analyze(&files);
    assert_eq!(rule_symbols(&findings, RuleId::AA07), Vec::<String>::new());
}

#[test]
fn aa07_fn_level_pragma_blocks_propagation_and_audits() {
    let files = [(class("aa07_clean.rs", "core"), fixture("aa07_clean.rs"))];
    let (_, findings, suppressed) = analyze(&files);
    assert!(findings.is_empty(), "{findings:#?}");
    // The vetted kernel shows up once in the audit trail.
    let vetted: Vec<_> = suppressed
        .iter()
        .filter(|f| f.rule == RuleId::AA07 && f.message.contains("vetted"))
        .collect();
    assert_eq!(vetted.len(), 1, "{suppressed:#?}");
    assert_eq!(vetted[0].symbol.as_deref(), Some("row_weight"));
}

// ---------------------------------------------------------------- AA08 ----

#[test]
fn aa08_flags_core_fns_tainted_through_a_callee() {
    let files = [(class("aa08_bad.rs", "core"), fixture("aa08_bad.rs"))];
    let (_, findings, _) = analyze(&files);
    // `stamp` holds the direct source (AA04 territory, skipped); `recombine`
    // is tainted through the call and reported.
    assert_eq!(rule_symbols(&findings, RuleId::AA08), vec!["recombine"]);
    let f = findings.iter().find(|f| f.rule == RuleId::AA08).unwrap();
    assert!(
        f.message.contains("`stamp`"),
        "witness named: {}",
        f.message
    );
}

#[test]
fn aa08_only_applies_to_the_deterministic_core() {
    let mut c = class("aa08_bad.rs", "core");
    c.deterministic_core = false;
    let files = [(c, fixture("aa08_bad.rs"))];
    let (_, findings, _) = analyze(&files);
    assert_eq!(rule_symbols(&findings, RuleId::AA08), Vec::<String>::new());
}

#[test]
fn aa08_vetted_boundary_fn_stops_taint() {
    let files = [(class("aa08_clean.rs", "core"), fixture("aa08_clean.rs"))];
    let (_, findings, _) = analyze(&files);
    assert!(findings.is_empty(), "{findings:#?}");
}

// ---------------------------------------------------------------- AA09 ----

#[test]
fn aa09_flags_raw_writes_ack_without_append_and_flush_before_commit() {
    let files = [(class("aa09_bad.rs", "serve"), fixture("aa09_bad.rs"))];
    let (_, findings, _) = analyze(&files);
    assert_eq!(
        rule_symbols(&findings, RuleId::AA09),
        vec!["Wal::apply_then_commit", "Wal::submit", "side_write"],
        "{findings:#?}"
    );
    let msg = |sym: &str| {
        findings
            .iter()
            .find(|f| f.rule == RuleId::AA09 && f.symbol.as_deref() == Some(sym))
            .map(|f| f.message.clone())
            .unwrap()
    };
    assert!(msg("Wal::submit").contains("no prior `.append(..)`"));
    assert!(msg("Wal::apply_then_commit").contains("before the WAL group-commit"));
    assert!(msg("side_write").contains("atomic_write_file"));
}

#[test]
fn aa09_only_applies_to_durability_crates() {
    let files = [(class("aa09_bad.rs", "graph"), fixture("aa09_bad.rs"))];
    let (_, findings, _) = analyze(&files);
    assert_eq!(rule_symbols(&findings, RuleId::AA09), Vec::<String>::new());
}

#[test]
fn aa09_clean_orderings_and_reasoned_exemptions_pass() {
    let files = [(class("aa09_clean.rs", "serve"), fixture("aa09_clean.rs"))];
    let (_, findings, suppressed) = analyze(&files);
    assert_eq!(
        rule_symbols(&findings, RuleId::AA09),
        Vec::<String>::new(),
        "{findings:#?}"
    );
    // The pragma'd diagnostic-trace create lands in the audit trail.
    let audited: Vec<_> = suppressed
        .iter()
        .filter(|f| f.rule == RuleId::AA09)
        .collect();
    assert_eq!(audited.len(), 1, "{suppressed:#?}");
    assert_eq!(audited[0].symbol.as_deref(), Some("trace_export"));
}

// ------------------------------------------------------------- torture ----

fn torture() -> (CallGraph, Vec<Finding>, Vec<Finding>) {
    let mut hot = class("torture_a.rs", "core");
    hot.is_hot_path = true;
    let files = [
        (hot, fixture("torture_a.rs")),
        (class("torture_b.rs", "core"), fixture("torture_b.rs")),
    ];
    analyze(&files)
}

#[test]
fn torture_trait_objects_fan_out_to_every_impl() {
    let (graph, findings, _) = torture();
    let (drive_idx, _) = node(&graph, "drive");
    let callees: Vec<&str> = graph.edges[drive_idx]
        .iter()
        .map(|&c| graph.nodes[c].symbol.as_str())
        .collect();
    // The bodyless trait declaration gets its own (seedless) node; the two
    // impls are what matter.
    assert_eq!(
        callees,
        vec!["Relax::relax", "Fast::relax", "Slow::relax"],
        "dyn dispatch must reach both impls"
    );
    // ... and since Slow::relax seeds (hot-path indexing), drive is flagged.
    assert!(rule_symbols(&findings, RuleId::AA07).contains(&"drive".to_string()));
}

#[test]
fn torture_hot_path_indexing_seeds_aa07_directly() {
    let (_, findings, _) = torture();
    let slow = findings
        .iter()
        .find(|f| f.symbol.as_deref() == Some("Slow::relax"))
        .expect("hot-path indexing reported");
    assert!(slow.message.contains("indexing"), "{}", slow.message);
}

#[test]
fn torture_generic_impl_methods_resolve_by_name() {
    let (_, findings, _) = torture();
    assert!(
        rule_symbols(&findings, RuleId::AA07).contains(&"use_pool".to_string()),
        "`p.take()` must resolve to the generic `Pool<T>::take`"
    );
}

#[test]
fn torture_std_imports_prune_shadowed_names() {
    let (graph, findings, _) = torture();
    // `shadow_caller` imports std::mem::swap; file A's panicking `swap`
    // namesake must not be linked.
    let (idx, _) = node(&graph, "shadow_caller");
    assert!(graph.edges[idx].is_empty(), "{:?}", graph.edges[idx]);
    assert!(!rule_symbols(&findings, RuleId::AA07).contains(&"shadow_caller".to_string()));
}

#[test]
fn torture_bare_calls_prefer_same_file_definitions() {
    let (graph, findings, _) = torture();
    let (idx, _) = node(&graph, "same_file_caller");
    let callees: Vec<&str> = graph.edges[idx]
        .iter()
        .map(|&c| graph.nodes[c].symbol.as_str())
        .collect();
    // Exactly one callee: file A's clean helper, not file B's panicking one.
    assert_eq!(callees, vec!["helper"]);
    let callee = graph.edges[idx][0];
    assert!(graph.nodes[callee].panic_sites.is_empty());
    assert!(!rule_symbols(&findings, RuleId::AA07).contains(&"same_file_caller".to_string()));
}

#[test]
fn torture_closure_panics_attribute_to_the_enclosing_fn() {
    let (graph, _, _) = torture();
    let (_, n) = node(&graph, "closure_panics");
    assert!(
        !n.panic_sites.is_empty(),
        "the closure's unwrap seeds the enclosing fn"
    );
    assert!(n.panic_reported_by_aa01, "unwrap is AA01's direct business");
}

#[test]
fn torture_expected_findings_and_nothing_else() {
    let (_, findings, _) = torture();
    assert_eq!(
        rule_symbols(&findings, RuleId::AA07),
        vec!["Slow::relax", "drive", "use_pool"],
        "{findings:#?}"
    );
}
