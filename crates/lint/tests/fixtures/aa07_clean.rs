//! AA07 fixture (clean): same call shape as `aa07_bad.rs`, but the leaf
//! kernel carries a reasoned fn-level pragma asserting the invariant that
//! makes its panic unreachable. Propagation stops there: the whole upward
//! closure is clean, and the vetted fn lands in the suppression audit trail.

pub struct Engine;

impl Engine {
    pub fn superstep(&self) -> u32 {
        self.relax_round()
    }

    fn relax_round(&self) -> u32 {
        row_weight()
    }
}

/// # Panics
/// Never: the vector is constructed non-empty one line above the access.
// aa-lint: allow(AA07, the vector is constructed non-empty one line above the access)
fn row_weight() -> u32 {
    let xs: Vec<u32> = vec![1, 2, 3];
    *xs.first().expect("non-empty by construction")
}
