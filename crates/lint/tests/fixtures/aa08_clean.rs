//! AA08 fixture (clean): the same clock read, but behind a vetted boundary
//! fn (the `aa_obs::Stopwatch` pattern). The fn-level pragma asserts the
//! contract — the value flows only to observability sinks — and taint stops
//! propagating there, so the deterministic-core caller stays clean.

pub fn recombine(rows: &mut Vec<u32>) {
    let t = stamp();
    rows.push(t);
}

// aa-lint: allow(AA08, observability boundary — the value flows only to span logs and never into control flow or replayable state)
fn stamp() -> u32 {
    let now = std::time::Instant::now();
    now.elapsed().subsec_nanos()
}
