//! AA09 fixture: durability-ordering violations, shaped like the serve
//! crate's WAL submit path. Three distinct defects:
//!
//! * `Wal::submit` returns a `WriteOutcome::Logged` ack having never called
//!   `.append(..)` — a crash after the ack silently loses the write;
//! * `Wal::apply_then_commit` flushes derived state *before* the
//!   group-commit marker is durable — recovery would replay on top of
//!   already-applied state;
//! * `side_write` opens a file raw instead of going through
//!   `atomic_write_file` — a torn write survives a crash.

pub enum WriteOutcome {
    Logged(u64),
    Rejected,
}

pub struct Wal {
    staged: Vec<Vec<u8>>,
}

impl Wal {
    /// Acks before anything reaches the log.
    pub fn submit(&mut self, rec: &[u8]) -> WriteOutcome {
        self.staged.push(rec.to_vec());
        WriteOutcome::Logged(self.staged.len() as u64)
    }

    /// Applies (flushes) state ahead of the commit marker.
    pub fn apply_then_commit(&mut self, log: &mut Log) {
        log.flush();
        log.commit();
    }
}

pub fn side_write(path: &std::path::Path) {
    let _ = std::fs::File::create(path);
}
