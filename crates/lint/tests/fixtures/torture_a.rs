//! Call-graph torture corpus, file A (paired with `torture_b.rs`; scanned
//! as a hot-path file of an availability-critical crate).
//!
//! Exercises: trait-object dispatch fanning out to every impl, hot-path
//! indexing as an AA07 seed, a panicking free fn that file B must *not*
//! link to through its `std::mem::swap` import, and same-file-first bare
//! call resolution (file B defines a panicking `helper` namesake).

pub trait Relax {
    fn relax(&self, rows: &mut [u32]);
}

pub struct Fast;
pub struct Slow;

impl Relax for Fast {
    fn relax(&self, rows: &mut [u32]) {
        for r in rows.iter_mut() {
            *r = r.saturating_sub(1);
        }
    }
}

impl Relax for Slow {
    fn relax(&self, rows: &mut [u32]) {
        rows[0] = 0; // indexing on a hot-path file: seeds AA07
    }
}

/// Trait-object dispatch: conservatively reaches *both* impls.
pub fn drive(r: &dyn Relax, rows: &mut [u32]) {
    r.relax(rows);
}

/// The free fn file B shadows with a std import.
pub fn swap(a: &mut u32, b: &mut u32) {
    let t = *a;
    *a = *b;
    *b = t;
    panic!("fixture swap must never be linked through a std import");
}

/// Bare-call resolution: the same-file helper wins over file B's namesake.
fn helper() -> u32 {
    41
}

pub fn same_file_caller() -> u32 {
    helper() + 1
}
