//! AA02 fixture: NaN-unsafe float ordering. Both sort lines must be flagged
//! as AA02 (and *not* double-reported as AA01).

pub fn rank(mut scores: Vec<(u32, f64)>) -> Vec<(u32, f64)> {
    scores.sort_by(|a, b| a.1.total_cmp(&b.1)); // flag: AA02
    scores
}

pub fn rank_rev(mut scores: Vec<(u32, f64)>) -> Vec<(u32, f64)> {
    scores.sort_by(|a, b| b.1.total_cmp(&a.1)); // flag: AA02
    scores
}
