//! AA07 fixture: transitive panic reachability. `row_weight` panics
//! directly (AA01's business — AA07 must not double-report it), and both
//! `Engine::superstep` and `Engine::relax_round` reach it through calls, so
//! each gets one AA07 finding. `untouched` calls nothing and stays clean.

pub struct Engine;

impl Engine {
    /// Two hops above the panic.
    pub fn superstep(&self) -> u32 {
        self.relax_round()
    }

    /// One hop above the panic.
    fn relax_round(&self) -> u32 {
        row_weight()
    }
}

fn row_weight() -> u32 {
    let xs: Vec<u32> = vec![1, 2, 3];
    *xs.first().unwrap() // leaf site: AA01 reports this one
}

pub fn untouched() -> u32 {
    7
}
