//! AA06 fixture (lib-root classification): crate root with the forbid
//! attribute. Must produce zero findings.
#![forbid(unsafe_code)]

pub fn placeholder() -> u32 {
    42
}
