//! AA03 fixture: exact equality against float literals. Both comparisons
//! must be flagged.

pub fn is_unreached(closeness: f64) -> bool {
    (closeness - 0.0).abs() < f64::EPSILON // flag: AA03
}

pub fn changed(old: f64, new: f64) -> bool {
    new - old != 0.0 // flag: AA03
}
