//! AA09 fixture (clean): every ordering the bad twin violates, done right.
//! `submit` appends before acking, `commit_then_flush` makes the marker
//! durable before applying, the raw create lives inside the one fn allowed
//! to own it (`atomic_write_file`), and the diagnostic-trace create carries
//! a reasoned pragma naming why a torn file is harmless.

pub enum WriteOutcome {
    Logged(u64),
    Rejected,
}

pub struct Wal {
    log: Log,
}

impl Wal {
    /// Append first, ack second.
    pub fn submit(&mut self, rec: &[u8]) -> WriteOutcome {
        let seq = self.log.append(rec);
        WriteOutcome::Logged(seq)
    }

    /// Commit marker durable before derived state is applied.
    pub fn commit_then_flush(&mut self, log: &mut Log) {
        log.commit();
        log.flush();
    }
}

/// The sanctioned atomic path: fixture twin of `aa-durable`'s contract fn.
pub fn atomic_write_file(path: &std::path::Path, bytes: &[u8]) {
    let _ = std::fs::File::create(path);
    let _ = bytes;
}

pub fn trace_export(path: &std::path::Path) {
    // aa-lint: allow(AA09, streamed diagnostic trace overwritten every run and never read back by recovery)
    let _ = std::fs::File::create(path);
}
