//! AA02 fixture: the `total_cmp` rewrite. Must produce zero findings.

pub fn rank(mut scores: Vec<(u32, f64)>) -> Vec<(u32, f64)> {
    scores.sort_by(|a, b| a.1.total_cmp(&b.1));
    scores
}

pub fn rank_rev(mut scores: Vec<(u32, f64)>) -> Vec<(u32, f64)> {
    scores.sort_by(|a, b| b.1.total_cmp(&a.1));
    scores
}
