//! AA01 fixture: the Result-propagating rewrites of `aa01_bad.rs`. Must
//! produce zero findings.

pub fn parse(s: &str) -> Result<u32, String> {
    s.parse().map_err(|e| format!("bad integer {s:?}: {e}"))
}

pub fn head(v: &[u32]) -> Option<u32> {
    v.first().copied()
}

pub fn grid(dir: u8) -> Result<i32, String> {
    match dir {
        0 => Ok(1),
        1 => Ok(-1),
        other => Err(format!("unknown direction {other}")),
    }
}
