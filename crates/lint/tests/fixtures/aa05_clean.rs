//! AA05 fixture (hot-path classification): checked conversions and widening
//! casts. Must produce zero findings.

pub fn pack(row_count: usize) -> Result<u32, String> {
    u32::try_from(row_count).map_err(|_| format!("{row_count} rows overflow u32"))
}

pub fn widen(v: u32) -> u64 {
    u64::from(v)
}

pub fn promote(v: u32) -> f64 {
    v as f64
}
