//! AA04 fixture: deterministic rewrites — seeded RNG, step counters instead
//! of wall clocks, BTree collections for ordered iteration, and a reasoned
//! pragma for the sort-immediately-after pattern the lexical rule cannot see
//! through. Must produce zero unsuppressed findings.

use rand::SeedableRng;
use std::collections::{BTreeMap, HashMap};

pub fn roll(seed: u64) -> u64 {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    rand::Rng::gen(&mut rng)
}

pub fn dump(m: &BTreeMap<u32, f64>) -> Vec<(u32, f64)> {
    let scores: BTreeMap<u32, f64> = m.clone();
    scores.into_iter().collect()
}

pub fn dump_sorted(m: HashMap<u32, f64>) -> Vec<(u32, f64)> {
    let hash_scores: HashMap<u32, f64> = m;
    let mut out: Vec<(u32, f64)> =
        // aa-lint: allow(AA04, collected then sorted by key on the next line, order cannot leak)
        hash_scores.into_iter().collect();
    out.sort_unstable_by_key(|&(k, _)| k);
    out
}

pub fn logical_clock(step: u64) -> u64 {
    step + 1
}
