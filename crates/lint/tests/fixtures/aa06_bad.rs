//! AA06 fixture (lib-root classification): crate root *without*
//! `#![forbid(unsafe_code)]`. Must be flagged once.

pub fn placeholder() -> u32 {
    42
}
