//! AA05 fixture (hot-path classification): lossy `as` casts. All three casts
//! must be flagged.

pub fn pack(row_count: usize) -> u32 {
    row_count as u32 // flag: usize -> u32 may truncate
}

pub fn quantize(score: f64) -> u32 {
    (score * 1000.0) as u32 // flag: narrowing target
}

pub fn micros() -> u64 {
    1e6 as u64 // flag: float literal -> int truncates silently
}
