//! Call-graph torture corpus, file B (paired with `torture_a.rs`).
//!
//! Exercises: generic-impl method resolution by name, a `use std::mem::swap`
//! import shadowing file A's panicking `swap` (the edge must be pruned), a
//! panicking `helper` namesake that file A's bare call must not reach, and
//! closure bodies attributing their panics to the enclosing fn.

use std::mem::swap;

/// Generic impl: `take` resolves by method name across the workspace.
pub struct Pool<T> {
    items: Vec<T>,
}

impl<T> Pool<T> {
    pub fn take(&mut self) -> T {
        self.items.pop().expect("pool never empty") // AA01-style seed
    }
}

pub fn use_pool(p: &mut Pool<u32>) -> u32 {
    p.take()
}

/// Shadowed name: this `swap` is std's, not file A's panicking namesake.
pub fn shadow_caller(a: &mut u32, b: &mut u32) {
    swap(a, b);
}

/// Panicking namesake of file A's private `helper` — must stay unlinked
/// from file A's bare call.
pub fn helper() -> u32 {
    unreachable!("file B helper must stay unlinked from file A")
}

/// Closure bodies belong to the enclosing fn.
pub fn closure_panics(xs: Vec<Option<u32>>) -> Vec<u32> {
    xs.into_iter().map(|x| x.unwrap()).collect()
}
