//! Lexer torture fixture: every construct here is designed to produce a
//! false positive if comment/string awareness breaks. A correct scan of this
//! file (as non-test library code) yields exactly ZERO findings.

/* block comment mentioning .unwrap() and panic!() — not code */

/* nested /* block /* comments */ still */ hide .expect("x") too */

pub fn strings() -> Vec<String> {
    vec![
        "calling .unwrap() here is fine".to_string(),
        "panic!(\"with escaped quotes\") stays data".to_string(),
        String::from(r"raw string with .expect(msg) inside"),
        String::from(r#"raw hash string: partial_cmp(x).unwrap() "quoted""#),
        String::from("backslash at end \\"),
    ]
}

pub fn chars_vs_lifetimes<'a>(s: &'a str) -> (&'a str, char, char, char) {
    let quote = '\'';
    let brace = '{';
    let escaped = '\n';
    (s, quote, brace, escaped)
}

pub fn byte_strings() -> (&'static [u8], u8) {
    (b"bytes with .unwrap() text", b'u')
}

pub fn numbers() -> (u32, f64, f64, f64) {
    // `1.max(2)` must lex as Int + method call, not a malformed float.
    let a = 1.max(2);
    let b = 1.5;
    let c = 1e3;
    let d = 2f64;
    (a, b, c, d)
}

pub fn cmp_ints(a: u32, b: u32) -> bool {
    a == b // integer equality: not AA03
}

pub struct Generic<T>(pub T);

impl<T: Clone> Generic<T> {
    pub fn get(&self) -> T {
        self.0.clone()
    }
}
