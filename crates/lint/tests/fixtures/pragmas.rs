//! Pragma fixture: one correctly suppressed finding, one same-line pragma,
//! one pragma missing its reason (AA00), one naming an unknown rule (AA00),
//! and one suppression that does NOT cover its target (wrong rule).

pub fn suppressed_prev_line(v: &[u32]) -> u32 {
    // aa-lint: allow(AA01, slice is length-checked by the caller)
    *v.first().unwrap()
}

pub fn suppressed_same_line(v: &[u32]) -> u32 {
    *v.first().unwrap() // aa-lint: allow(AA01, slice is length-checked by the caller)
}

pub fn missing_reason(v: &[u32]) -> u32 {
    // aa-lint: allow(AA01)
    *v.first().unwrap()
}

pub fn unknown_rule(v: &[u32]) -> u32 {
    // aa-lint: allow(AA99, no such rule)
    *v.first().unwrap()
}

pub fn wrong_rule(v: &[u32]) -> u32 {
    // aa-lint: allow(AA03, this pragma names the wrong rule)
    *v.first().unwrap()
}
