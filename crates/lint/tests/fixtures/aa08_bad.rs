//! AA08 fixture: nondeterminism taint. `stamp` reads the wall clock — a
//! *direct* source, which is AA04's lexical finding, not AA08's. But
//! `recombine` pulls the tainted value in through the call, and a
//! deterministic-core fn whose output depends on a clock diverges under
//! sim-as-oracle replay — that is the AA08 finding.

pub fn recombine(rows: &mut Vec<u32>) {
    let t = stamp();
    rows.push(t);
}

fn stamp() -> u32 {
    let now = std::time::Instant::now(); // direct source: AA04 territory
    now.elapsed().subsec_nanos()
}
