//! AA04 fixture: nondeterminism sources in a deterministic-core crate.
//! Wall clocks, unseeded RNG, and hash-order iteration must all be flagged.

use std::collections::HashMap;
use std::time::{Instant, SystemTime}; // flag x2: wall clock types

pub fn stamp() -> Instant {
    Instant::now() // flag: wall clock
}

pub fn since_epoch() -> std::time::Duration {
    SystemTime::now() // flag: wall clock
        .duration_since(SystemTime::UNIX_EPOCH) // flag: wall clock
        .unwrap_or_default()
}

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng(); // flag: unseeded RNG
    rand::Rng::gen(&mut rng)
}

pub fn dump(m: &HashMap<u32, f64>) -> Vec<(u32, f64)> {
    let scores: HashMap<u32, f64> = m.clone();
    let mut out = Vec::new();
    for (k, v) in scores.iter() {
        // flag: hash-order iteration
        out.push((*k, *v));
    }
    out
}
