//! AA03 fixture: tolerance-based compares, plus one *justified* exact compare
//! carrying a suppression pragma. Must produce zero unsuppressed findings.

pub const EPS: f64 = 1e-12;

pub fn is_unreached(closeness: f64) -> bool {
    closeness.abs() < EPS
}

pub fn changed(old: f64, new: f64) -> bool {
    (new - old).abs() >= EPS
}

pub fn skip_scaling(scale: f64) -> bool {
    // aa-lint: allow(AA03, 1.0 is an exact sentinel set by config, never computed)
    scale == 1.0
}
