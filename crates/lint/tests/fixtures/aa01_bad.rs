//! AA01 fixture: panicking calls in library code. Every marked line must be
//! flagged; the `#[cfg(test)]` module at the bottom must not be.

pub fn parse(s: &str) -> u32 {
    s.parse().unwrap() // flag: unwrap
}

pub fn head(v: &[u32]) -> u32 {
    *v.first().expect("non-empty") // flag: expect
}

pub fn boom() {
    panic!("bad state"); // flag: panic!
}

pub fn grid(dir: u8) -> i32 {
    match dir {
        0 => 1,
        1 => -1,
        _ => unreachable!(), // flag: unreachable!
    }
}

pub fn later() {
    todo!() // flag: todo!
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        let v: Vec<u32> = vec![1];
        assert_eq!(*v.first().unwrap(), 1);
        let _: u32 = "7".parse().expect("digit");
    }
}
