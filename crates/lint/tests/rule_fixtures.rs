//! Rule self-tests: every rule must flag its known-bad fixture and pass its
//! clean/suppressed counterpart. Fixtures live under `tests/fixtures/` and
//! are excluded from the workspace scan (the `fixtures` directory is in the
//! walker's skip list), so the bad ones never taint the baseline.

use aa_lint::{check_source, FileClass, RuleId};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Library-code classification (AA01–AA04 apply).
fn lib_class(name: &str) -> FileClass {
    FileClass {
        rel_path: format!("crates/fixture/src/{name}"),
        crate_name: Some("fixture".to_string()),
        deterministic_core: true,
        ..FileClass::default()
    }
}

fn count(report: &aa_lint::rules::FileReport, rule: RuleId) -> usize {
    report.findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn aa01_flags_panicking_calls_outside_tests() {
    let report = check_source(&lib_class("aa01_bad.rs"), &fixture("aa01_bad.rs"));
    assert_eq!(
        count(&report, RuleId::AA01),
        5,
        "unwrap/expect/panic!/unreachable!/todo! each flagged once: {:#?}",
        report.findings
    );
    // The #[cfg(test)] module's unwrap+expect must NOT be among them.
    assert!(report.findings.iter().all(|f| f.line < 28));
}

#[test]
fn aa01_passes_result_rewrite() {
    let report = check_source(&lib_class("aa01_clean.rs"), &fixture("aa01_clean.rs"));
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
}

#[test]
fn aa01_exempts_panicky_crates() {
    let class = FileClass {
        allow_panics: true,
        ..lib_class("aa01_bad.rs")
    };
    let report = check_source(&class, &fixture("aa01_bad.rs"));
    assert_eq!(count(&report, RuleId::AA01), 0, "{:#?}", report.findings);
}

#[test]
fn aa02_flags_partial_cmp_unwrap_without_double_report() {
    let report = check_source(&lib_class("aa02_bad.rs"), &fixture("aa02_bad.rs"));
    assert_eq!(count(&report, RuleId::AA02), 2, "{:#?}", report.findings);
    // AA02 claims the consumed unwrap/expect; AA01 must not fire on it too.
    assert_eq!(count(&report, RuleId::AA01), 0, "{:#?}", report.findings);
}

#[test]
fn aa02_passes_total_cmp() {
    let report = check_source(&lib_class("aa02_clean.rs"), &fixture("aa02_clean.rs"));
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
}

#[test]
fn aa03_flags_exact_float_literal_compares() {
    let report = check_source(&lib_class("aa03_bad.rs"), &fixture("aa03_bad.rs"));
    assert_eq!(count(&report, RuleId::AA03), 2, "{:#?}", report.findings);
}

#[test]
fn aa03_passes_tolerance_compares_and_reasoned_pragma() {
    let report = check_source(&lib_class("aa03_clean.rs"), &fixture("aa03_clean.rs"));
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
    assert_eq!(report.suppressed.len(), 1, "sentinel compare is suppressed");
    assert_eq!(report.suppressed[0].rule, RuleId::AA03);
}

#[test]
fn aa04_flags_clocks_rng_and_hash_iteration() {
    let report = check_source(&lib_class("aa04_bad.rs"), &fixture("aa04_bad.rs"));
    assert!(
        count(&report, RuleId::AA04) >= 5,
        "wall clocks + thread_rng + hash iteration: {:#?}",
        report.findings
    );
}

#[test]
fn aa04_passes_seeded_rng_and_sorted_iteration() {
    let report = check_source(&lib_class("aa04_clean.rs"), &fixture("aa04_clean.rs"));
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
    // The sort-after-collect pattern is invisible to the lexical rule and is
    // carried by a reasoned pragma instead.
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].rule, RuleId::AA04);
}

#[test]
fn aa04_only_applies_to_deterministic_core() {
    let class = FileClass {
        deterministic_core: false,
        ..lib_class("aa04_bad.rs")
    };
    let report = check_source(&class, &fixture("aa04_bad.rs"));
    assert_eq!(count(&report, RuleId::AA04), 0, "{:#?}", report.findings);
}

#[test]
fn aa05_flags_lossy_casts_on_hot_paths_only() {
    let hot = FileClass {
        is_hot_path: true,
        ..lib_class("aa05_bad.rs")
    };
    let report = check_source(&hot, &fixture("aa05_bad.rs"));
    assert_eq!(count(&report, RuleId::AA05), 3, "{:#?}", report.findings);

    let cold = lib_class("aa05_bad.rs");
    let report = check_source(&cold, &fixture("aa05_bad.rs"));
    assert_eq!(count(&report, RuleId::AA05), 0, "{:#?}", report.findings);
}

#[test]
fn aa05_passes_checked_and_widening_conversions() {
    let hot = FileClass {
        is_hot_path: true,
        ..lib_class("aa05_clean.rs")
    };
    let report = check_source(&hot, &fixture("aa05_clean.rs"));
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
}

#[test]
fn aa06_requires_forbid_unsafe_on_lib_roots() {
    let root = FileClass {
        is_lib_root: true,
        ..lib_class("lib.rs")
    };
    let report = check_source(&root, &fixture("aa06_bad.rs"));
    assert_eq!(count(&report, RuleId::AA06), 1, "{:#?}", report.findings);

    let report = check_source(&root, &fixture("aa06_clean.rs"));
    assert!(report.findings.is_empty(), "{:#?}", report.findings);

    // Non-root files are exempt even without the attribute.
    let report = check_source(&lib_class("aa06_bad.rs"), &fixture("aa06_bad.rs"));
    assert_eq!(count(&report, RuleId::AA06), 0, "{:#?}", report.findings);
}

#[test]
fn pragmas_suppress_cover_and_report_malformed() {
    let report = check_source(&lib_class("pragmas.rs"), &fixture("pragmas.rs"));
    // Two well-formed AA01 pragmas (previous-line and same-line) suppress.
    assert_eq!(report.suppressed.len(), 2, "{:#?}", report.suppressed);
    assert!(report.suppressed.iter().all(|f| f.rule == RuleId::AA01));
    // Missing reason + unknown rule each raise AA00 and do NOT suppress.
    assert_eq!(count(&report, RuleId::AA00), 2, "{:#?}", report.findings);
    // Their targets, plus the wrong-rule pragma's target, still fire AA01.
    assert_eq!(count(&report, RuleId::AA01), 3, "{:#?}", report.findings);
}

#[test]
fn lexer_tricky_corpus_is_finding_free() {
    let hot_core_root = FileClass {
        is_hot_path: true,
        is_lib_root: false, // has no forbid attr; not a crate root
        ..lib_class("lexer_tricky.rs")
    };
    let report = check_source(&hot_core_root, &fixture("lexer_tricky.rs"));
    assert!(
        report.findings.is_empty() && report.suppressed.is_empty(),
        "comment/string-aware lexing must hide every decoy: {:#?}",
        report.findings
    );
}
