//! `--fix` golden tests and SARIF output checks.
//!
//! The golden fixed fixtures are included below as real modules via
//! `#[path]`, so `cargo test` *compiles* the fixer's output and runs it —
//! the autofix must produce working code, not just lexically clean code.
//! Equality against the goldens keeps the rewrite byte-exact (rustfmt-clean
//! formatting included), and re-running the fixer on its own output must be
//! a no-op.

use aa_lint::{fix, FileClass, Finding, RuleId};

#[path = "fixtures/aa02_fixed.rs"]
mod aa02_fixed;
#[path = "fixtures/aa03_fixed.rs"]
mod aa03_fixed;

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn lib_class(name: &str) -> FileClass {
    FileClass {
        rel_path: format!("crates/fixture/src/{name}"),
        crate_name: Some("fixture".to_string()),
        deterministic_core: true,
        ..FileClass::default()
    }
}

#[test]
fn aa02_fix_matches_golden_and_is_idempotent() {
    let (out, n) = fix::fix_source(&lib_class("aa02_bad.rs"), &fixture("aa02_bad.rs"))
        .expect("both sort lines are fixable");
    // Two sites, two byte-edits each (method rename + call deletion).
    assert_eq!(n, 4);
    assert_eq!(out, fixture("aa02_fixed.rs"));
    assert!(
        fix::fix_source(&lib_class("aa02_fixed.rs"), &out).is_none(),
        "fixed output must contain nothing left to fix"
    );
}

#[test]
fn aa02_fixed_output_runs_and_tolerates_nan() {
    // The whole point of total_cmp: a NaN no longer panics the sort.
    let ranked = aa02_fixed::rank(vec![(1, 0.5), (2, f64::NAN), (3, 0.1)]);
    assert_eq!(ranked[0].0, 3, "ascending, NaN sorted last: {ranked:?}");
    assert_eq!(ranked[2].0, 2);
    let ranked = aa02_fixed::rank_rev(vec![(1, 0.5), (2, f64::NAN), (3, 0.1)]);
    assert_eq!(ranked[0].0, 2, "descending, NaN first: {ranked:?}");
}

#[test]
fn aa03_fix_is_conservative_about_compound_expressions() {
    let (out, n) = fix::fix_source(&lib_class("aa03_bad.rs"), &fixture("aa03_bad.rs"))
        .expect("the simple comparison is fixable");
    // Only `closeness == 0.0` is rewritten. `new - old != 0.0` is left
    // alone: the fixer captures primary-expression chains only, and blindly
    // wrapping `old` would bind `.abs()` to the wrong subexpression.
    assert_eq!(n, 1);
    assert_eq!(out, fixture("aa03_fixed.rs"));
    assert!(
        fix::fix_source(&lib_class("aa03_fixed.rs"), &out).is_none(),
        "the skipped compound compare must not retrigger edits"
    );
}

#[test]
fn aa03_fixed_output_runs_with_epsilon_semantics() {
    assert!(aa03_fixed::is_unreached(0.0));
    assert!(aa03_fixed::is_unreached(f64::EPSILON / 2.0));
    assert!(!aa03_fixed::is_unreached(1.0));
    assert!(!aa03_fixed::changed(1.0, 1.0));
    assert!(aa03_fixed::changed(1.0, 2.0));
}

#[test]
fn fix_leaves_test_code_and_pragma_covered_sites_alone() {
    let src = r#"
pub fn ranked(mut xs: Vec<f64>) -> Vec<f64> {
    // aa-lint: allow(AA02, reviewed: inputs are pre-filtered finite)
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let mut xs = vec![2.0, 1.0];
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    }
}
"#;
    assert!(
        fix::fix_source(&lib_class("covered.rs"), src).is_none(),
        "suppressions are reviewed decisions, tests may panic"
    );
}

// --------------------------------------------------------------- SARIF ----

#[test]
fn sarif_document_carries_rules_results_and_symbol_fingerprints() {
    let mut report = aa_lint::WorkspaceReport::default();
    report.findings.push(Finding {
        rule: RuleId::AA07,
        file: "crates/core/src/engine.rs".into(),
        line: 42,
        col: 5,
        message: "`AnytimeEngine::rc_step` can reach a panic — \"quoted\"".into(),
        symbol: Some("AnytimeEngine::rc_step".into()),
    });
    let doc = aa_lint::sarif::render(&report);
    assert!(doc.contains("\"version\": \"2.1.0\""));
    assert!(doc.contains("sarif-2.1.0.json"));
    // The full rule table rides along for code-scanning UIs.
    for rule in RuleId::ALL {
        assert!(doc.contains(&format!("\"{}\"", rule.as_str())), "{rule:?}");
    }
    assert!(doc.contains("\"ruleId\": \"AA07\""));
    assert!(doc.contains("\"startLine\": 42"));
    assert!(doc.contains("\"uri\": \"crates/core/src/engine.rs\""));
    // Interproc findings fingerprint by file#symbol so GitHub tracks them
    // across line churn.
    assert!(doc.contains("aaLintSymbol"));
    assert!(doc.contains("crates/core/src/engine.rs#AnytimeEngine::rc_step"));
    // The message's interior quote must arrive escaped, not truncating JSON.
    assert!(doc.contains("\\\"quoted\\\""));
}

#[test]
fn sarif_empty_report_is_still_a_complete_document() {
    let doc = aa_lint::sarif::render(&aa_lint::WorkspaceReport::default());
    assert!(doc.contains("\"results\": []"));
    assert!(doc.contains("\"name\": \"aa-lint\""));
}
