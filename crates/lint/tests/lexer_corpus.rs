//! Direct lexer assertions over the torture fixture plus targeted snippets:
//! strings, raw strings, nested block comments, char literals vs lifetimes,
//! and number forms. Complements `rule_fixtures.rs`, which checks the same
//! corpus end-to-end through the rules.

use aa_lint::lexer::{lex, TokenKind};

fn idents(src: &str) -> Vec<String> {
    lex(src)
        .tokens
        .into_iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text)
        .collect()
}

#[test]
fn strings_hide_their_contents() {
    let ids = idents(r#"let x = "calling .unwrap() here"; f(x);"#);
    assert_eq!(ids, ["let", "x", "f", "x"], "unwrap leaked out of a string");
}

#[test]
fn raw_strings_with_hashes_and_quotes() {
    let src = r##"let s = r#"quoted " and .expect(msg) inside"#; g(s);"##;
    let ids = idents(src);
    assert_eq!(ids, ["let", "s", "g", "s"]);
}

#[test]
fn raw_string_without_hashes() {
    let ids = idents(r#"let s = r"no \ escapes .unwrap()"; s"#);
    assert_eq!(ids, ["let", "s", "s"]);
}

#[test]
fn byte_and_raw_byte_strings() {
    let ids = idents(r##"let a = b"panic!() bytes"; let c = br#"more .unwrap()"#;"##);
    assert_eq!(ids, ["let", "a", "let", "c"]);
}

#[test]
fn nested_block_comments_terminate_correctly() {
    let src = "/* a /* b /* c */ */ still comment */ real();";
    let lexed = lex(src);
    let ids: Vec<&str> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(ids, ["real"]);
    assert_eq!(lexed.comments.len(), 1);
    assert!(lexed.comments[0].text.contains("still comment"));
}

#[test]
fn char_literal_vs_lifetime() {
    let lexed = lex("fn f<'a>(s: &'a str) { let q = '\\''; let b = 'x'; }");
    let lifetimes: Vec<&str> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Lifetime)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(lifetimes, ["'a", "'a"]);
    let chars = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Char)
        .count();
    assert_eq!(chars, 2, "escaped-quote char and plain char");
}

#[test]
fn static_lifetime_and_labels() {
    let lexed = lex("fn f() -> &'static str { 'outer: loop { break 'outer; } }");
    let lifetimes = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Lifetime)
        .count();
    assert_eq!(lifetimes, 3, "'static + label definition + break target");
}

#[test]
fn number_forms() {
    let lexed = lex("let a = 1.max(2); let b = 1.5; let c = 1e3; let d = 2f64; let e = 0x1F;");
    let kinds: Vec<(TokenKind, &str)> = lexed
        .tokens
        .iter()
        .filter(|t| matches!(t.kind, TokenKind::Int | TokenKind::Float))
        .map(|t| (t.kind, t.text.as_str()))
        .collect();
    assert_eq!(
        kinds,
        [
            (TokenKind::Int, "1"),
            (TokenKind::Int, "2"),
            (TokenKind::Float, "1.5"),
            (TokenKind::Float, "1e3"),
            (TokenKind::Float, "2f64"),
            (TokenKind::Int, "0x1F"),
        ]
    );
}

#[test]
fn fused_comparison_operators() {
    let lexed = lex("a == b; c != d; e <= f;");
    let puncts: Vec<&str> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Punct && t.text.len() == 2)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(puncts, ["==", "!=", "<="]);
}

#[test]
fn line_and_column_tracking() {
    let lexed = lex("foo();\n    bar();\n");
    let bar = lexed
        .tokens
        .iter()
        .find(|t| t.text == "bar")
        .expect("bar token");
    assert_eq!((bar.line, bar.col), (2, 5));
}

#[test]
fn line_comments_are_captured_not_tokenized() {
    let lexed = lex("x(); // trailing .unwrap() note\ny();");
    assert_eq!(lexed.comments.len(), 1);
    assert_eq!(lexed.comments[0].line, 1);
    assert!(lexed.tokens.iter().all(|t| t.text != "unwrap"));
}

#[test]
fn nested_generic_close_is_two_angle_tokens() {
    // `Vec<Vec<u64>>` must not fuse the closing `>>` into a shift operator —
    // the item parser matches generic brackets one angle at a time.
    let lexed = lex("let v: Vec<Vec<u64>> = make::<Vec<<T as Tr>::Item>>();");
    assert!(
        lexed
            .tokens
            .iter()
            .all(|t| t.text != ">>" && t.text != "<<"),
        "angle pairs fused into shift operators"
    );
}

#[test]
fn tuple_index_chain_is_not_a_float() {
    // `x.0.1` is two tuple-index accesses; lexing `0.1` as a float would
    // false-trigger the float-equality rule on `pair.0.1 == pair.1.0`.
    let lexed = lex("let y = x.0.1;");
    let nums: Vec<(TokenKind, &str)> = lexed
        .tokens
        .iter()
        .filter(|t| matches!(t.kind, TokenKind::Int | TokenKind::Float))
        .map(|t| (t.kind, t.text.as_str()))
        .collect();
    assert_eq!(nums, [(TokenKind::Int, "0"), (TokenKind::Int, "1")]);
}

#[test]
fn lifetime_vs_char_inside_macro_body() {
    // Macro bodies mix labels, lifetimes, and char literals in positions a
    // grammar-aware lexer would disambiguate contextually; ours must get
    // them right from lookahead alone.
    let lexed = lex("m! { 'outer: loop { if c == 'x' { break 'outer; } } }");
    let lifetimes: Vec<&str> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Lifetime)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(lifetimes, ["'outer", "'outer"]);
    assert_eq!(
        lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count(),
        1
    );
}

#[test]
fn byte_offsets_address_token_spans() {
    let src = "let s = \"x\"; call(s);";
    let lexed = lex(src);
    for t in &lexed.tokens {
        let span = &src[t.offset..t.offset + t.text.len()];
        assert_eq!(span, t.text, "offset span mismatch for {:?}", t.text);
    }
}

#[test]
fn torture_fixture_lexes_without_token_leaks() {
    let path = format!(
        "{}/tests/fixtures/lexer_tricky.rs",
        env!("CARGO_MANIFEST_DIR")
    );
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let lexed = lex(&src);
    // Every `unwrap`/`expect`/`panic` mention in that file lives inside a
    // string or comment; none may surface as an identifier token.
    for t in &lexed.tokens {
        if t.kind == TokenKind::Ident {
            assert!(
                !matches!(t.text.as_str(), "unwrap" | "expect" | "panic"),
                "decoy leaked at {}:{}",
                t.line,
                t.col
            );
        }
    }
    assert!(lexed.comments.len() >= 3, "doc + block comments captured");
}
