//! Deterministic storage-fault injection.
//!
//! Extends the runtime `FaultPlan` idiom (seeded, replayable decisions keyed
//! by operation index) from message-passing to I/O. Every fault decision is
//! a pure function of `(seed, fault-class salt, per-class op counter)`
//! through a SplitMix64 finalizer, so a failing storage schedule replays
//! bit-for-bit from its seed — no RNG state is shared between fault classes,
//! and adding a new class never perturbs existing draws.
//!
//! Supported fault classes:
//!
//! * **failed fsync** — `sync` returns an error; a seeded *prefix* of the
//!   pending bytes still reached the platter (a torn write), the rest is
//!   lost. This is the nastiest real-world fsync semantic: the caller must
//!   treat the tail of the file as garbage.
//! * **failed rename** — the atomic-publish rename step errors; the temp
//!   file may survive as debris.
//! * **torn tail on kill** — on process kill, un-fsynced bytes are torn at
//!   a seeded offset (and possibly bit-flipped) instead of cleanly dropped.
//! * **short read** — a read returns a seeded prefix of the file.
//! * **bit flip on read** — media corruption: one seeded bit of the read
//!   image is inverted.

/// Per-class fault probabilities, each in `[0, 1]` (clamped on use).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageFaults {
    /// Probability a `sync` call fails, leaving a torn durable prefix.
    pub p_fail_fsync: f64,
    /// Probability the rename step of an atomic write fails.
    pub p_fail_rename: f64,
    /// Probability un-fsynced bytes are torn (vs. cleanly dropped) on kill.
    pub p_torn_tail: f64,
    /// Probability a read is truncated to a seeded prefix.
    pub p_short_read: f64,
    /// Probability one bit of a read image is flipped.
    pub p_bit_flip: f64,
}

impl StorageFaults {
    /// No faults: every storage op succeeds, kills drop pending bytes cleanly.
    pub fn none() -> Self {
        StorageFaults {
            p_fail_fsync: 0.0,
            p_fail_rename: 0.0,
            p_torn_tail: 0.0,
            p_short_read: 0.0,
            p_bit_flip: 0.0,
        }
    }

    /// Write-side faults only (failed fsync/rename, torn tails on kill).
    /// These preserve the durability invariant — recovery must still be
    /// oracle-exact — unlike read corruption, which destroys data.
    pub fn write_side(p: f64) -> Self {
        StorageFaults {
            p_fail_fsync: p,
            p_fail_rename: p,
            p_torn_tail: p.max(0.5),
            p_short_read: 0.0,
            p_bit_flip: 0.0,
        }
    }
}

impl Default for StorageFaults {
    fn default() -> Self {
        StorageFaults::none()
    }
}

/// Distinct salt per fault class; draws for one class never shift another's.
const SALT_FSYNC: u64 = 0xF5;
const SALT_RENAME: u64 = 0x4E;
const SALT_KILL: u64 = 0xC4;
const SALT_READ: u64 = 0x2D;

/// What (if anything) to do to a read image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadTamper {
    /// Return the bytes as stored.
    None,
    /// Truncate the image to this many bytes.
    Short(usize),
    /// Invert this bit index (over the whole image).
    FlipBit(usize),
}

/// Seeded, deterministic storage-fault schedule.
///
/// Each fault class keeps its own op counter; the n-th decision of a class
/// is `finalize(seed ^ salt, n)` and nothing else, so schedules are stable
/// under refactors that reorder unrelated storage traffic.
#[derive(Debug, Clone)]
pub struct StorageFaultPlan {
    seed: u64,
    faults: StorageFaults,
    fsync_idx: u64,
    rename_idx: u64,
    kill_idx: u64,
    read_idx: u64,
}

/// SplitMix64 finalizer — same mixing constants as the serve workload
/// generator and the runtime fault plan.
fn finalize(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StorageFaultPlan {
    /// Builds a plan from a seed and per-class probabilities.
    pub fn new(seed: u64, faults: StorageFaults) -> Self {
        StorageFaultPlan {
            seed,
            faults,
            fsync_idx: 0,
            rename_idx: 0,
            kill_idx: 0,
            read_idx: 0,
        }
    }

    /// The plan's seed (for reporting a failing schedule).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn draw(&self, salt: u64, idx: u64, lane: u64) -> u64 {
        finalize(
            self.seed
                ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ idx.wrapping_mul(0x100_0193)
                ^ lane.wrapping_mul(0x1_0001),
        )
    }

    fn unit(&self, salt: u64, idx: u64, lane: u64) -> f64 {
        (self.draw(salt, idx, lane) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Decides whether the next `sync` call fails. On failure, a seeded
    /// **strict** prefix of `pending_len` bytes is still durable: returns
    /// `Some(kept_prefix_len)` with `kept < pending_len` — a failed fsync
    /// loses at least one byte, it never silently persists everything (if
    /// every byte reached the platter the sync did not fail). `None` means
    /// the sync succeeds.
    pub fn fsync_failure(&mut self, pending_len: usize) -> Option<usize> {
        let idx = self.fsync_idx;
        self.fsync_idx += 1;
        if self.unit(SALT_FSYNC, idx, 0) < self.faults.p_fail_fsync.clamp(0.0, 1.0) {
            let keep = if pending_len == 0 {
                0
            } else {
                (self.draw(SALT_FSYNC, idx, 1) % pending_len as u64) as usize
            };
            Some(keep)
        } else {
            None
        }
    }

    /// Decides whether the next rename (atomic publish) fails.
    pub fn rename_fails(&mut self) -> bool {
        let idx = self.rename_idx;
        self.rename_idx += 1;
        self.unit(SALT_RENAME, idx, 0) < self.faults.p_fail_rename.clamp(0.0, 1.0)
    }

    /// Decides what happens to one file's un-fsynced bytes on kill:
    /// `(kept_prefix_len, bit_to_flip_in_kept_prefix)`. A clean drop is
    /// `(0, None)`; a torn tail keeps a seeded prefix and may flip one bit
    /// inside it (the classic torn-sector corruption).
    pub fn tear(&mut self, pending_len: usize) -> (usize, Option<usize>) {
        let idx = self.kill_idx;
        self.kill_idx += 1;
        if pending_len == 0
            || self.unit(SALT_KILL, idx, 0) >= self.faults.p_torn_tail.clamp(0.0, 1.0)
        {
            return (0, None);
        }
        let keep = (self.draw(SALT_KILL, idx, 1) % (pending_len as u64 + 1)) as usize;
        if keep == 0 {
            return (0, None);
        }
        // Half of torn tails also corrupt a bit inside the kept prefix.
        let flip = if self.unit(SALT_KILL, idx, 2) < 0.5 {
            Some((self.draw(SALT_KILL, idx, 3) % (keep as u64 * 8)) as usize)
        } else {
            None
        };
        (keep, flip)
    }

    /// Decides whether (and how) the next read image is tampered with.
    pub fn read_tamper(&mut self, len: usize) -> ReadTamper {
        let idx = self.read_idx;
        self.read_idx += 1;
        if len == 0 {
            return ReadTamper::None;
        }
        let roll = self.unit(SALT_READ, idx, 0);
        let p_short = self.faults.p_short_read.clamp(0.0, 1.0);
        let p_flip = self.faults.p_bit_flip.clamp(0.0, 1.0);
        if roll < p_short {
            ReadTamper::Short((self.draw(SALT_READ, idx, 1) % len as u64) as usize)
        } else if roll < p_short + p_flip {
            ReadTamper::FlipBit((self.draw(SALT_READ, idx, 2) % (len as u64 * 8)) as usize)
        } else {
            ReadTamper::None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let faults = StorageFaults {
            p_fail_fsync: 0.5,
            p_fail_rename: 0.5,
            p_torn_tail: 0.5,
            p_short_read: 0.3,
            p_bit_flip: 0.3,
        };
        let mut a = StorageFaultPlan::new(42, faults);
        let mut b = StorageFaultPlan::new(42, faults);
        for len in [0usize, 1, 100, 4096] {
            assert_eq!(a.fsync_failure(len), b.fsync_failure(len));
            assert_eq!(a.rename_fails(), b.rename_fails());
            assert_eq!(a.tear(len), b.tear(len));
            assert_eq!(a.read_tamper(len), b.read_tamper(len));
        }
    }

    #[test]
    fn zero_probabilities_never_fault() {
        let mut p = StorageFaultPlan::new(7, StorageFaults::none());
        for _ in 0..64 {
            assert_eq!(p.fsync_failure(128), None);
            assert!(!p.rename_fails());
            assert_eq!(p.tear(128), (0, None));
            assert_eq!(p.read_tamper(128), ReadTamper::None);
        }
    }

    #[test]
    fn probabilities_bite_eventually() {
        let mut p = StorageFaultPlan::new(9, StorageFaults::write_side(0.5));
        let mut fsync_failures = 0;
        let mut torn = 0;
        for _ in 0..64 {
            if p.fsync_failure(256).is_some() {
                fsync_failures += 1;
            }
            if p.tear(256).0 > 0 {
                torn += 1;
            }
        }
        assert!(fsync_failures > 8, "fsync failures: {fsync_failures}");
        assert!(torn > 8, "torn tails: {torn}");
    }

    #[test]
    fn tear_respects_pending_len() {
        let mut p = StorageFaultPlan::new(3, StorageFaults::write_side(1.0));
        for len in [1usize, 2, 17, 333] {
            let (keep, flip) = p.tear(len);
            assert!(keep <= len);
            if let Some(bit) = flip {
                assert!(bit < keep * 8);
            }
        }
        assert_eq!(p.tear(0), (0, None));
    }
}
