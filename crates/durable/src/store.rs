//! [`DurableLog`]: the WAL + checkpoint orchestrator the serve layer owns.
//!
//! A checkpoint is the engine's `aa_core::checkpoint` image wrapped in one
//! more CRC32 frame (magic `AADC`) whose body is prefixed with the WAL
//! sequence number it **covers**: every op with `seq <= covered` is baked
//! into the image, every later op must be replayed from the WAL. Checkpoint
//! files are named `ckpt-<covered:020>.aadc` and published with
//! [`Storage::write_atomic`] — a crash mid-checkpoint leaves the previous
//! checkpoint intact, never a torn one.
//!
//! Taking a checkpoint rotates the WAL first, so every older segment holds
//! only covered records and is deleted (compaction); older checkpoint files
//! beyond a keep-count are deleted too. All mutation metrics are recorded in
//! an owned [`MetricsRegistry`] the serve layer merges into its own.

use crate::storage::Storage;
use crate::wal::{parse_segment_name, WalWriter};
use aa_core::checkpoint::{read_framed, write_framed};
use aa_core::AnytimeEngine;
use aa_ingest::UpdateOp;
use aa_obs::MetricsRegistry;
use std::io;

/// Durable-checkpoint frame magic (distinct from the engine's `AACK`).
pub const CHECKPOINT_MAGIC: &[u8; 4] = b"AADC";
/// Durable-checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// File name for the checkpoint covering `seq`. Zero-padded so the newest
/// checkpoint is the lexicographically largest.
pub fn checkpoint_name(seq: u64) -> String {
    format!("ckpt-{seq:020}.aadc")
}

/// Parses a checkpoint file name back to its covered sequence number.
pub fn parse_checkpoint_name(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?
        .strip_suffix(".aadc")?
        .parse()
        .ok()
}

/// Encodes a durable checkpoint: covered sequence + engine image, framed.
pub fn encode_checkpoint(covered: u64, engine: &AnytimeEngine) -> io::Result<Vec<u8>> {
    let mut body = Vec::new();
    body.extend_from_slice(&covered.to_le_bytes());
    engine.save_checkpoint(&mut body)?;
    Ok(write_framed(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, &body))
}

/// Decodes a durable checkpoint image into `(covered_seq, engine)`.
pub fn decode_checkpoint(
    bytes: &[u8],
    config: aa_core::EngineConfig,
) -> io::Result<(u64, AnytimeEngine)> {
    let body = read_framed(bytes, CHECKPOINT_MAGIC, CHECKPOINT_VERSION)?;
    if body.len() < 8 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "checkpoint body shorter than its covered-seq stamp",
        ));
    }
    let covered =
        u64::from_le_bytes(body[0..8].try_into().map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, "covered-seq stamp unreadable")
        })?);
    let engine = AnytimeEngine::restore_checkpoint(&mut &body[8..], config)?;
    Ok((covered, engine))
}

/// Tuning for the durability layer.
#[derive(Debug, Clone, Copy)]
pub struct DurabilityConfig {
    /// Rotate the active WAL segment once it exceeds this many bytes.
    pub rotate_bytes: u64,
    /// Serve layer: take a checkpoint every this many turns (0 = only on
    /// shutdown). Stored here so one config travels through the stack.
    pub checkpoint_every_turns: usize,
    /// Checkpoint files retained beyond the newest (paranoia margin: if the
    /// newest is unreadable, recovery falls back to an older one plus a
    /// longer replay).
    pub keep_checkpoints: usize,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            rotate_bytes: 256 * 1024,
            checkpoint_every_turns: 16,
            keep_checkpoints: 2,
        }
    }
}

/// Owns the WAL writer and checkpoint/compaction policy; the single entry
/// point the serve layer drives.
#[derive(Debug)]
pub struct DurableLog {
    wal: WalWriter,
    config: DurabilityConfig,
    metrics: MetricsRegistry,
}

impl DurableLog {
    /// Opens the log, assigning sequence numbers from `next_seq` (recovery
    /// hands in `last replayed + 1`).
    pub fn open(
        storage: &mut dyn Storage,
        next_seq: u64,
        config: DurabilityConfig,
    ) -> io::Result<DurableLog> {
        let wal = WalWriter::open(storage, next_seq, config.rotate_bytes)?;
        let mut metrics = MetricsRegistry::new();
        metrics.set_help("aa_wal_appends_total", "WAL records appended (buffered)");
        metrics.set_help("aa_wal_commits_total", "WAL group commits by outcome");
        metrics.set_help("aa_wal_bytes_total", "Bytes made durable via WAL commits");
        metrics.set_help("aa_wal_fsyncs_total", "fsync calls issued by WAL commits");
        metrics.set_help(
            "aa_wal_records_aborted_total",
            "Records discarded by failed commits",
        );
        metrics.set_help("aa_wal_rotations_total", "WAL segment rotations by outcome");
        metrics.set_help(
            "aa_wal_segments_deleted_total",
            "WAL segments removed by compaction",
        );
        metrics.set_help(
            "aa_checkpoint_writes_total",
            "Durable checkpoint writes by outcome",
        );
        metrics.set_help(
            "aa_checkpoint_bytes_total",
            "Bytes written to durable checkpoints",
        );
        metrics.set_help(
            "aa_checkpoints_deleted_total",
            "Old checkpoints removed by compaction",
        );
        metrics.set_help(
            "aa_wal_committed_seq",
            "Highest durable WAL sequence number",
        );
        Ok(DurableLog {
            wal,
            config,
            metrics,
        })
    }

    /// The layer's config.
    pub fn config(&self) -> &DurabilityConfig {
        &self.config
    }

    /// Highest sequence number known durable.
    pub fn committed_seq(&self) -> u64 {
        self.wal.committed_seq()
    }

    /// Records buffered and awaiting the next group commit.
    pub fn pending_records(&self) -> u64 {
        self.wal.pending_records()
    }

    /// Buffers an op in the WAL and returns its sequence number. Durable
    /// only after the next successful [`DurableLog::commit`].
    pub fn append(&mut self, op: &UpdateOp) -> u64 {
        self.metrics.inc_counter("aa_wal_appends_total", &[], 1);
        self.wal.append(op)
    }

    /// Group-commits all buffered records (one fsync). Returns the highest
    /// durable sequence. On `Err` the buffered records are discarded — the
    /// caller must un-acknowledge / abort the matching pipeline ops.
    pub fn commit(&mut self, storage: &mut dyn Storage) -> io::Result<u64> {
        let batch_records = self.wal.pending_records();
        let batch_bytes = self.wal.pending_bytes();
        match self.wal.commit(storage) {
            Ok(seq) => {
                self.metrics
                    .inc_counter("aa_wal_commits_total", &[("outcome", "ok")], 1);
                if batch_records > 0 {
                    self.metrics.inc_counter("aa_wal_fsyncs_total", &[], 1);
                    self.metrics
                        .inc_counter("aa_wal_bytes_total", &[], batch_bytes);
                }
                self.metrics
                    .set_gauge("aa_wal_committed_seq", &[], seq as f64);
                if self.wal.wants_rotation() {
                    match self.wal.rotate(storage) {
                        Ok(()) => self.metrics.inc_counter(
                            "aa_wal_rotations_total",
                            &[("outcome", "ok")],
                            1,
                        ),
                        // Non-fatal: the data is durable, the segment just
                        // keeps growing until a later rotation succeeds.
                        Err(_) => self.metrics.inc_counter(
                            "aa_wal_rotations_total",
                            &[("outcome", "error")],
                            1,
                        ),
                    }
                }
                Ok(seq)
            }
            Err(e) => {
                self.metrics
                    .inc_counter("aa_wal_commits_total", &[("outcome", "error")], 1);
                self.metrics
                    .inc_counter("aa_wal_records_aborted_total", &[], batch_records);
                Err(e)
            }
        }
    }

    /// Writes an atomic checkpoint of `engine` covering every committed
    /// record, rotates the WAL, and compacts fully-covered segments and
    /// superseded checkpoints. The caller must have applied all committed
    /// records to `engine` (the serve turn loop commits, then flushes, then
    /// checkpoints). Returns the covered sequence number.
    pub fn checkpoint(
        &mut self,
        storage: &mut dyn Storage,
        engine: &AnytimeEngine,
    ) -> io::Result<u64> {
        let covered = self.wal.committed_seq();
        let image = encode_checkpoint(covered, engine)?;
        let image_len = image.len() as u64;
        let name = checkpoint_name(covered);
        if let Err(e) = storage.write_atomic(&name, &image) {
            self.metrics
                .inc_counter("aa_checkpoint_writes_total", &[("outcome", "error")], 1);
            return Err(e);
        }
        self.metrics
            .inc_counter("aa_checkpoint_writes_total", &[("outcome", "ok")], 1);
        self.metrics
            .inc_counter("aa_checkpoint_bytes_total", &[], image_len);
        // Rotate so the active segment's records all have seq > covered;
        // failure is non-fatal (compaction just keeps the active segment).
        match self.wal.rotate(storage) {
            Ok(()) => {
                self.metrics
                    .inc_counter("aa_wal_rotations_total", &[("outcome", "ok")], 1);
            }
            Err(_) => {
                self.metrics
                    .inc_counter("aa_wal_rotations_total", &[("outcome", "error")], 1);
            }
        }
        self.compact(storage, covered)?;
        Ok(covered)
    }

    /// Deletes checkpoints superseded beyond the keep-count and WAL segments
    /// fully covered by the **oldest retained** checkpoint — not the newest:
    /// if the newest checkpoint is later quarantined (media corruption),
    /// recovery falls back to an older one and must still find every record
    /// past that older horizon in the WAL. Deletion failures are ignored —
    /// stale files cost disk, not correctness, and the next checkpoint
    /// retries.
    fn compact(&mut self, storage: &mut dyn Storage, covered: u64) -> io::Result<()> {
        let names = storage.list()?;
        let mut ckpts: Vec<u64> = names
            .iter()
            .filter_map(|n| parse_checkpoint_name(n))
            .collect();
        ckpts.push(covered); // the one just written may not be in `names`
        ckpts.sort_unstable();
        ckpts.dedup();
        let keep = self.config.keep_checkpoints.max(1);
        if ckpts.len() > keep {
            for seq in &ckpts[..ckpts.len() - keep] {
                if storage.remove(&checkpoint_name(*seq)).is_ok() {
                    self.metrics
                        .inc_counter("aa_checkpoints_deleted_total", &[], 1);
                }
            }
            ckpts.drain(..ckpts.len() - keep);
        }
        // Replay-fallback horizon: every record <= horizon is baked into
        // every retained checkpoint.
        let horizon = *ckpts.first().unwrap_or(&0);
        // Records in segment i all precede segment i+1's first sequence, so
        // a segment is fully covered iff its successor starts at or below
        // horizon + 1. The active (last) segment is never deleted.
        let mut segments: Vec<(u64, &String)> = names
            .iter()
            .filter_map(|n| parse_segment_name(n).map(|s| (s, n)))
            .collect();
        segments.sort_unstable();
        for pair in segments.windows(2) {
            let (_, name) = &pair[0];
            let (succ_first, _) = pair[1];
            if succ_first <= horizon + 1 && storage.remove(name).is_ok() {
                self.metrics
                    .inc_counter("aa_wal_segments_deleted_total", &[], 1);
            }
        }
        Ok(())
    }

    /// Snapshot of this layer's metrics (serve merges them each turn).
    pub fn metrics_registry(&self) -> &MetricsRegistry {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::SimStorage;
    use aa_core::EngineConfig;
    use aa_graph::generators;

    fn engine() -> AnytimeEngine {
        let g = generators::barabasi_albert(30, 2, 1, 5);
        let mut e = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: 2,
                ..Default::default()
            },
        );
        e.initialize();
        e
    }

    #[test]
    fn checkpoint_name_round_trips_and_sorts() {
        assert_eq!(parse_checkpoint_name(&checkpoint_name(42)), Some(42));
        assert!(checkpoint_name(9) < checkpoint_name(10));
        assert_eq!(parse_checkpoint_name("ckpt-x.aadc"), None);
        assert_eq!(parse_checkpoint_name("wal-00000000000000000001.aawl"), None);
    }

    #[test]
    fn checkpoint_encodes_and_decodes() {
        let e = engine();
        let bytes = match encode_checkpoint(7, &e) {
            Ok(b) => b,
            Err(err) => panic!("encode: {err}"),
        };
        let (covered, restored) = match decode_checkpoint(&bytes, e.config().clone()) {
            Ok(v) => v,
            Err(err) => panic!("decode: {err}"),
        };
        assert_eq!(covered, 7);
        assert_eq!(
            restored.graph().vertices().count(),
            e.graph().vertices().count()
        );
    }

    #[test]
    fn truncated_checkpoint_is_clean_err() {
        let e = engine();
        let bytes = match encode_checkpoint(3, &e) {
            Ok(b) => b,
            Err(err) => panic!("encode: {err}"),
        };
        for cut in [0, 8, 15, 16, bytes.len() / 2, bytes.len() - 1] {
            let r = decode_checkpoint(&bytes[..cut], e.config().clone());
            assert!(r.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn checkpoint_compacts_covered_segments_and_old_checkpoints() {
        let sim = SimStorage::new();
        let mut s = sim.clone();
        let e = engine();
        let mut log = match DurableLog::open(&mut s, 1, DurabilityConfig::default()) {
            Ok(l) => l,
            Err(err) => panic!("open: {err}"),
        };
        for round in 0..4u32 {
            for i in 0..5u32 {
                log.append(&UpdateOp::AddEdge(round * 5 + i, round * 5 + i + 1, 1));
            }
            log.commit(&mut s).ok();
            log.checkpoint(&mut s, &e).ok();
        }
        let names = s.list().unwrap_or_default();
        let segments = names
            .iter()
            .filter(|n| parse_segment_name(n).is_some())
            .count();
        let ckpts = names
            .iter()
            .filter(|n| parse_checkpoint_name(n).is_some())
            .count();
        // Segments covered only by the newest checkpoint are retained for
        // fallback; with keep=2 that leaves the active segment plus one.
        assert_eq!(segments, 2, "active + fallback segment survive: {names:?}");
        assert_eq!(ckpts, 2, "keep-count bounds checkpoints: {names:?}");
        let m = log.metrics_registry();
        assert!(m.counter_value("aa_wal_segments_deleted_total", &[]) >= 3);
        assert!(m.counter_value("aa_checkpoints_deleted_total", &[]) >= 2);
        assert_eq!(
            m.counter_value("aa_checkpoint_writes_total", &[("outcome", "ok")]),
            4
        );
    }
}
