//! Storage abstraction: a real directory-backed store and a deterministic
//! in-memory simulation with kill-at-any-point semantics.
//!
//! The durability layer never touches the filesystem directly; everything
//! goes through the [`Storage`] trait so the same WAL/checkpoint/recovery
//! code runs against [`DiskStorage`] in production and [`SimStorage`] in
//! tests. `SimStorage` models the property that makes crash consistency
//! hard: bytes written but not yet fsynced live in a *pending* buffer that
//! a [`SimStorage::kill`] destroys — cleanly, or torn at a seeded offset
//! when a [`StorageFaultPlan`](crate::fault::StorageFaultPlan) says so.

use crate::fault::{ReadTamper, StorageFaultPlan};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::rc::Rc;

/// Flat namespace of named byte files with explicit durability boundaries.
///
/// `append` buffers bytes that only become crash-safe after `sync` returns
/// `Ok`; `write_atomic` publishes a complete file all-or-nothing (temp +
/// fsync + rename). Names are flat (no path separators).
pub trait Storage {
    /// All file names present, sorted ascending.
    fn list(&self) -> io::Result<Vec<String>>;
    /// Full current contents of a file (durable plus still-pending bytes).
    fn read(&mut self, name: &str) -> io::Result<Vec<u8>>;
    /// Appends bytes to a file, creating it if absent. Not durable until
    /// the next successful `sync` of the same file.
    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<()>;
    /// Makes all previously appended bytes of `name` crash-safe.
    fn sync(&mut self, name: &str) -> io::Result<()>;
    /// Atomically replaces `name` with `bytes`: on return the file holds
    /// either its old contents or exactly `bytes`, never a mix.
    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> io::Result<()>;
    /// Removes a file; absent files are not an error (compaction retries).
    fn remove(&mut self, name: &str) -> io::Result<()>;
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename over the target, best-effort directory fsync. A crash at
/// any point leaves either the old file or the new one, never a torn mix.
/// Shared by the checkpoint writer and the CLI's JSON artifact exports.
pub fn atomic_write_file(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Persist the rename itself; failure here is not data loss (the rename
    // is already visible), so it is deliberately best-effort.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// [`Storage`] over a real directory. Each name is one file under `root`.
#[derive(Debug)]
pub struct DiskStorage {
    root: PathBuf,
}

impl DiskStorage {
    /// Opens (creating if needed) the directory backing the store.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(DiskStorage { root })
    }

    /// The backing directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl Storage for DiskStorage {
    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Some(name) = entry.file_name().to_str() {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    fn read(&mut self, name: &str) -> io::Result<Vec<u8>> {
        fs::read(self.path(name))
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        // aa-lint: allow(AA09, the WAL append path itself — durability comes from the explicit sync() group-commit marker that follows a batch, not from atomic replace)
        let mut f = OpenOptions::new()
            .append(true)
            .create(true)
            .open(self.path(name))?;
        f.write_all(bytes)
    }

    fn sync(&mut self, name: &str) -> io::Result<()> {
        File::open(self.path(name))?.sync_all()
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        atomic_write_file(&self.path(name), bytes)
    }

    fn remove(&mut self, name: &str) -> io::Result<()> {
        match fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

/// Counters describing what the simulated store has seen and injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// `append` calls.
    pub appends: u64,
    /// `sync` calls that succeeded.
    pub fsyncs: u64,
    /// `sync` calls failed by the fault plan (torn durable prefix).
    pub fsync_failures: u64,
    /// Atomic writes that published successfully.
    pub renames: u64,
    /// Atomic writes failed at the rename step (temp debris left behind).
    pub rename_failures: u64,
    /// `read` calls.
    pub reads: u64,
    /// Reads truncated by the fault plan.
    pub short_reads: u64,
    /// Reads with a bit flipped by the fault plan.
    pub flipped_reads: u64,
    /// `kill` invocations.
    pub kills: u64,
    /// Un-fsynced bytes destroyed across all kills.
    pub bytes_lost: u64,
    /// Bytes of torn (partially surviving) tails across all kills.
    pub bytes_torn: u64,
}

#[derive(Debug, Default, Clone)]
struct SimFile {
    /// Crash-safe bytes: survive `kill` intact.
    durable: Vec<u8>,
    /// Appended but not yet fsynced: destroyed (or torn) by `kill`.
    pending: Vec<u8>,
}

#[derive(Debug, Default)]
struct SimInner {
    files: BTreeMap<String, SimFile>,
    plan: Option<StorageFaultPlan>,
    stats: SimStats,
}

/// Deterministic in-memory [`Storage`] with kill-at-any-point semantics.
///
/// Cloning yields another handle to the same store, so a test can keep one
/// handle to call [`SimStorage::kill`]/[`SimStorage::stats`] while the
/// durability layer owns the other.
#[derive(Debug, Clone, Default)]
pub struct SimStorage {
    inner: Rc<RefCell<SimInner>>,
}

impl SimStorage {
    /// Fault-free simulated store: fsyncs succeed, kills drop pending bytes
    /// cleanly.
    pub fn new() -> Self {
        SimStorage::default()
    }

    /// Simulated store with a seeded fault schedule.
    pub fn with_faults(plan: StorageFaultPlan) -> Self {
        let s = SimStorage::default();
        s.inner.borrow_mut().plan = Some(plan);
        s
    }

    /// Simulates `kill -9`: every file keeps its durable bytes; pending
    /// bytes are destroyed — cleanly, or (per the fault plan) torn at a
    /// seeded offset with a possible bit flip inside the surviving prefix.
    pub fn kill(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.stats.kills += 1;
        // Split the borrow: decide tears with the plan, then apply.
        let mut tears: Vec<(String, usize, Option<usize>)> = Vec::new();
        for (name, file) in inner.files.iter() {
            if file.pending.is_empty() {
                continue;
            }
            tears.push((name.clone(), file.pending.len(), None));
        }
        for t in tears.iter_mut() {
            let (keep, flip) = match inner.plan.as_mut() {
                Some(plan) => plan.tear(t.1),
                None => (0, None),
            };
            t.2 = flip;
            t.1 = keep;
        }
        for (name, keep, flip) in tears {
            if let Some(file) = inner.files.get_mut(&name) {
                let pending = std::mem::take(&mut file.pending);
                let lost = pending.len() - keep;
                if keep > 0 {
                    file.durable.extend_from_slice(&pending[..keep]);
                    if let Some(bit) = flip {
                        let pos = file.durable.len() - keep + bit / 8;
                        file.durable[pos] ^= 1 << (bit % 8);
                    }
                }
                inner.stats.bytes_torn += keep as u64;
                inner.stats.bytes_lost += lost as u64;
            }
        }
    }

    /// Snapshot of the injection/traffic counters.
    pub fn stats(&self) -> SimStats {
        self.inner.borrow().stats
    }

    /// Durable length of a file, if present (test introspection).
    pub fn durable_len(&self, name: &str) -> Option<usize> {
        self.inner.borrow().files.get(name).map(|f| f.durable.len())
    }

    /// Flips one bit of a file's durable image (media-corruption tests).
    pub fn flip_durable_bit(&self, name: &str, bit: usize) -> bool {
        let mut inner = self.inner.borrow_mut();
        match inner.files.get_mut(name) {
            Some(f) if bit / 8 < f.durable.len() => {
                f.durable[bit / 8] ^= 1 << (bit % 8);
                true
            }
            _ => false,
        }
    }

    /// Truncates a file's durable image (manual torn-tail tests).
    pub fn truncate_durable(&self, name: &str, len: usize) -> bool {
        let mut inner = self.inner.borrow_mut();
        match inner.files.get_mut(name) {
            Some(f) if len <= f.durable.len() => {
                f.durable.truncate(len);
                f.pending.clear();
                true
            }
            _ => false,
        }
    }
}

fn injected(kind: &str) -> io::Error {
    io::Error::other(format!("injected {kind} failure"))
}

impl Storage for SimStorage {
    fn list(&self) -> io::Result<Vec<String>> {
        Ok(self.inner.borrow().files.keys().cloned().collect())
    }

    fn read(&mut self, name: &str) -> io::Result<Vec<u8>> {
        let mut inner = self.inner.borrow_mut();
        inner.stats.reads += 1;
        let mut image = match inner.files.get(name) {
            Some(f) => {
                let mut v = f.durable.clone();
                v.extend_from_slice(&f.pending);
                v
            }
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("no such file: {name}"),
                ))
            }
        };
        let tamper = match inner.plan.as_mut() {
            Some(plan) => plan.read_tamper(image.len()),
            None => ReadTamper::None,
        };
        match tamper {
            ReadTamper::None => {}
            ReadTamper::Short(at) => {
                image.truncate(at);
                inner.stats.short_reads += 1;
            }
            ReadTamper::FlipBit(bit) => {
                image[bit / 8] ^= 1 << (bit % 8);
                inner.stats.flipped_reads += 1;
            }
        }
        Ok(image)
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.borrow_mut();
        inner.stats.appends += 1;
        inner
            .files
            .entry(name.to_string())
            .or_default()
            .pending
            .extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self, name: &str) -> io::Result<()> {
        let mut inner = self.inner.borrow_mut();
        let pending_len = inner.files.get(name).map_or(0, |f| f.pending.len());
        let failure = match inner.plan.as_mut() {
            Some(plan) => plan.fsync_failure(pending_len),
            None => None,
        };
        match failure {
            Some(keep) => {
                // Torn write: a prefix reached the platter, the rest is gone,
                // and the caller gets an error — it must not trust the tail.
                if let Some(f) = inner.files.get_mut(name) {
                    let pending = std::mem::take(&mut f.pending);
                    f.durable.extend_from_slice(&pending[..keep]);
                    inner.stats.bytes_torn += keep as u64;
                    inner.stats.bytes_lost += (pending.len() - keep) as u64;
                }
                inner.stats.fsync_failures += 1;
                Err(injected("fsync"))
            }
            None => {
                if let Some(f) = inner.files.get_mut(name) {
                    let pending = std::mem::take(&mut f.pending);
                    f.durable.extend_from_slice(&pending);
                }
                inner.stats.fsyncs += 1;
                Ok(())
            }
        }
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.borrow_mut();
        let fails = match inner.plan.as_mut() {
            Some(plan) => plan.rename_fails(),
            None => false,
        };
        if fails {
            // The temp file survives as debris; the target is untouched.
            inner.stats.rename_failures += 1;
            inner.files.insert(
                format!("{name}.tmp"),
                SimFile {
                    durable: bytes.to_vec(),
                    pending: Vec::new(),
                },
            );
            return Err(injected("rename"));
        }
        inner.stats.renames += 1;
        inner.files.remove(&format!("{name}.tmp"));
        inner.files.insert(
            name.to_string(),
            SimFile {
                durable: bytes.to_vec(),
                pending: Vec::new(),
            },
        );
        Ok(())
    }

    fn remove(&mut self, name: &str) -> io::Result<()> {
        self.inner.borrow_mut().files.remove(name);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::StorageFaults;

    #[test]
    fn sim_kill_drops_pending_keeps_durable() {
        let sim = SimStorage::new();
        let mut s = sim.clone();
        s.append("f", b"durable").ok();
        s.sync("f").ok();
        s.append("f", b"-pending").ok();
        assert_eq!(s.read("f").ok().as_deref(), Some(&b"durable-pending"[..]));
        sim.kill();
        assert_eq!(s.read("f").ok().as_deref(), Some(&b"durable"[..]));
        assert_eq!(sim.stats().bytes_lost, 8);
    }

    #[test]
    fn sim_atomic_write_is_all_or_nothing() {
        let sim = SimStorage::new();
        let mut s = sim.clone();
        s.write_atomic("a", b"v1").ok();
        s.write_atomic("a", b"v2").ok();
        assert_eq!(s.read("a").ok().as_deref(), Some(&b"v2"[..]));
        sim.kill();
        assert_eq!(s.read("a").ok().as_deref(), Some(&b"v2"[..]));
    }

    #[test]
    fn sim_injected_rename_failure_leaves_old_value_and_debris() {
        let plan = StorageFaultPlan::new(
            11,
            StorageFaults {
                p_fail_rename: 1.0,
                ..StorageFaults::none()
            },
        );
        let sim = SimStorage::with_faults(plan);
        let mut s = sim.clone();
        // Seed an old value without going through the faulty rename path.
        s.append("a", b"old").ok();
        s.sync("a").ok();
        assert!(s.write_atomic("a", b"new").is_err());
        assert_eq!(s.read("a").ok().as_deref(), Some(&b"old"[..]));
        assert!(s.list().ok().iter().flatten().any(|n| n == "a.tmp"));
        assert_eq!(sim.stats().rename_failures, 1);
    }

    #[test]
    fn sim_injected_fsync_failure_tears_the_tail() {
        let plan = StorageFaultPlan::new(
            5,
            StorageFaults {
                p_fail_fsync: 1.0,
                ..StorageFaults::none()
            },
        );
        let sim = SimStorage::with_faults(plan);
        let mut s = sim.clone();
        s.append("w", &[0xAB; 100]).ok();
        assert!(s.sync("w").is_err());
        let n = sim.durable_len("w").unwrap_or(usize::MAX);
        assert!(n <= 100, "durable prefix only, got {n}");
        // Pending is gone either way: a retry cannot resurrect the lost bytes.
        s.append("w", &[0xCD; 4]).ok();
        sim.kill();
        assert!(sim.durable_len("w").unwrap_or(0) >= n);
    }

    #[test]
    fn disk_storage_round_trips() {
        let dir = std::env::temp_dir().join(format!("aa-durable-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut s = match DiskStorage::open(&dir) {
            Ok(s) => s,
            Err(e) => panic!("open: {e}"),
        };
        s.append("seg", b"hello ").ok();
        s.append("seg", b"world").ok();
        s.sync("seg").ok();
        s.write_atomic("ckpt", b"state").ok();
        assert_eq!(s.read("seg").ok().as_deref(), Some(&b"hello world"[..]));
        assert_eq!(s.read("ckpt").ok().as_deref(), Some(&b"state"[..]));
        let names = s.list().unwrap_or_default();
        assert_eq!(names, vec!["ckpt".to_string(), "seg".to_string()]);
        s.remove("seg").ok();
        s.remove("seg").ok(); // idempotent
        let _ = fs::remove_dir_all(&dir);
    }
}
