//! Write-ahead log: record codec, segment scan, and the group-commit writer.
//!
//! ## On-storage format
//!
//! The log is a sequence of append-only **segments** named
//! `wal-<first_seq:020>.aawl`. Each segment starts with a 16-byte header —
//! magic `AAWL`, format version `u32`, first sequence number `u64` — and is
//! followed by length-prefixed, CRC32-framed records:
//!
//! ```text
//! | len: u32 | crc32(payload): u32 | payload: len bytes |
//! payload = | seq: u64 | op tag: u8 | op fields (LE) |
//! ```
//!
//! Each group commit appends its op records followed by a **commit marker**
//! (tag 5) carrying the committed-through sequence. Op records not covered
//! by a marker are an *uncommitted tail*: their batch's fsync — and
//! therefore their acknowledgement — never happened, so recovery drops
//! them. This is what makes the exactly-once contract hold under torn
//! writes: a tear that keeps complete op records but loses the marker
//! cannot resurrect never-acknowledged updates.
//!
//! All integers are little-endian, matching `aa_core::checkpoint`. Sequence
//! numbers increase monotonically across the whole log but need **not** be
//! contiguous: a failed group commit burns the sequence numbers of its
//! discarded records (their ops were never acknowledged, so nothing is
//! lost), and the writer rotates away from the possibly-torn segment.
//!
//! ## Torn tails
//!
//! A crash (or failed fsync) can leave a segment ending mid-record. The
//! scanner treats the first frame that fails its length or CRC check as the
//! start of a quarantined region: everything from there to the end of the
//! segment is reported as quarantined bytes, never replayed, and never a
//! panic. Valid records never follow garbage within a segment — the writer
//! only appends to a segment whose durable tail it trusts.
//!
//! ## Group commit
//!
//! [`WalWriter::append`] assigns a sequence number and buffers the encoded
//! record in memory; [`WalWriter::commit`] appends the whole buffer and
//! issues **one** fsync. The caller acknowledges ops only after `commit`
//! returns their sequence number — this is what makes `Accepted` a
//! durability promise at one storage round-trip per serve turn.

use crate::storage::Storage;
use aa_core::checkpoint::crc32;
use aa_graph::{VertexId, Weight};
use aa_ingest::UpdateOp;
use std::io;

/// Segment header magic.
pub const SEGMENT_MAGIC: &[u8; 4] = b"AAWL";
/// WAL format version.
pub const WAL_VERSION: u32 = 1;
/// Segment header length: magic + version + first_seq.
pub const SEGMENT_HEADER: usize = 16;
/// Per-record framing overhead: length prefix + CRC32.
pub const RECORD_OVERHEAD: usize = 8;
/// Upper bound on a sane record payload; larger lengths mean corruption.
pub const MAX_RECORD_BYTES: u32 = 1 << 20;

const TAG_ADD_EDGE: u8 = 0;
const TAG_DELETE_EDGE: u8 = 1;
const TAG_REWEIGHT: u8 = 2;
const TAG_ADD_VERTEX: u8 = 3;
const TAG_DELETE_VERTEX: u8 = 4;
const TAG_COMMIT: u8 = 5;

/// File name for the segment whose first record has sequence `first_seq`.
/// Zero-padded so lexicographic order equals sequence order.
pub fn segment_name(first_seq: u64) -> String {
    format!("wal-{first_seq:020}.aawl")
}

/// Parses a segment file name back to its first sequence number.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".aawl")?
        .parse()
        .ok()
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(b: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_le_bytes(b.get(at..at + 4)?.try_into().ok()?))
}

fn get_u64(b: &[u8], at: usize) -> Option<u64> {
    Some(u64::from_le_bytes(b.get(at..at + 8)?.try_into().ok()?))
}

fn encode_op(out: &mut Vec<u8>, op: &UpdateOp) {
    match op {
        UpdateOp::AddEdge(u, v, w) => {
            out.push(TAG_ADD_EDGE);
            put_u32(out, *u);
            put_u32(out, *v);
            put_u32(out, *w);
        }
        UpdateOp::DeleteEdge(u, v) => {
            out.push(TAG_DELETE_EDGE);
            put_u32(out, *u);
            put_u32(out, *v);
        }
        UpdateOp::Reweight(u, v, w) => {
            out.push(TAG_REWEIGHT);
            put_u32(out, *u);
            put_u32(out, *v);
            put_u32(out, *w);
        }
        UpdateOp::AddVertex { anchors } => {
            out.push(TAG_ADD_VERTEX);
            put_u32(out, anchors.len() as u32);
            for (a, w) in anchors {
                put_u32(out, *a);
                put_u32(out, *w);
            }
        }
        UpdateOp::DeleteVertex(v) => {
            out.push(TAG_DELETE_VERTEX);
            put_u32(out, *v);
        }
    }
}

fn decode_op(b: &[u8]) -> Result<UpdateOp, String> {
    let tag = *b.first().ok_or("empty op payload")?;
    let body = &b[1..];
    let exact = |n: usize| -> Result<(), String> {
        if body.len() == n {
            Ok(())
        } else {
            Err(format!(
                "op tag {tag}: expected {n} bytes, got {}",
                body.len()
            ))
        }
    };
    let u32_at = |at: usize| get_u32(body, at).ok_or_else(|| format!("op tag {tag}: short field"));
    match tag {
        TAG_ADD_EDGE => {
            exact(12)?;
            Ok(UpdateOp::AddEdge(
                u32_at(0)? as VertexId,
                u32_at(4)? as VertexId,
                u32_at(8)? as Weight,
            ))
        }
        TAG_DELETE_EDGE => {
            exact(8)?;
            Ok(UpdateOp::DeleteEdge(
                u32_at(0)? as VertexId,
                u32_at(4)? as VertexId,
            ))
        }
        TAG_REWEIGHT => {
            exact(12)?;
            Ok(UpdateOp::Reweight(
                u32_at(0)? as VertexId,
                u32_at(4)? as VertexId,
                u32_at(8)? as Weight,
            ))
        }
        TAG_ADD_VERTEX => {
            let n = u32_at(0)? as usize;
            exact(4 + n * 8)?;
            let mut anchors = Vec::with_capacity(n);
            for i in 0..n {
                anchors.push((u32_at(4 + i * 8)? as VertexId, u32_at(8 + i * 8)? as Weight));
            }
            Ok(UpdateOp::AddVertex { anchors })
        }
        TAG_DELETE_VERTEX => {
            exact(4)?;
            Ok(UpdateOp::DeleteVertex(u32_at(0)? as VertexId))
        }
        other => Err(format!("unknown op tag {other}")),
    }
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// An ingest op with its sequence number. **Provisional** until a
    /// `Commit` marker at or past its sequence follows in the segment — a
    /// torn group commit can leave complete op records on storage whose
    /// batch was never acknowledged.
    Op(u64, UpdateOp),
    /// Group-commit marker: every op record with `seq <=` this value is
    /// durable and was (or may be) acknowledged.
    Commit(u64),
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(RECORD_OVERHEAD + payload.len());
    put_u32(&mut rec, payload.len() as u32);
    put_u32(&mut rec, crc32(payload));
    rec.extend_from_slice(payload);
    rec
}

/// Encodes one op record (framing + payload) ready for appending.
pub fn encode_record(seq: u64, op: &UpdateOp) -> Vec<u8> {
    let mut payload = Vec::with_capacity(24);
    put_u64(&mut payload, seq);
    encode_op(&mut payload, op);
    frame(&payload)
}

/// Encodes a group-commit marker covering every record up to `seq`.
pub fn encode_commit(seq: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(9);
    put_u64(&mut payload, seq);
    payload.push(TAG_COMMIT);
    frame(&payload)
}

/// Decodes the record starting at `bytes[0]`. Returns the record and the
/// number of bytes it consumed. Never panics: any truncation or corruption
/// is a descriptive `Err`.
pub fn decode_record(bytes: &[u8]) -> Result<(WalRecord, usize), String> {
    if bytes.len() < RECORD_OVERHEAD {
        return Err(format!(
            "torn frame: {} bytes left, need at least {RECORD_OVERHEAD} for the frame header",
            bytes.len()
        ));
    }
    let len = get_u32(bytes, 0).ok_or("short length prefix")? as usize;
    let crc_stored = get_u32(bytes, 4).ok_or("short crc")?;
    if len == 0 || len as u32 > MAX_RECORD_BYTES {
        return Err(format!("implausible record length {len}"));
    }
    if bytes.len() - RECORD_OVERHEAD < len {
        return Err(format!(
            "torn frame: header declares {len} payload bytes, {} available",
            bytes.len() - RECORD_OVERHEAD
        ));
    }
    let payload = &bytes[RECORD_OVERHEAD..RECORD_OVERHEAD + len];
    if crc32(payload) != crc_stored {
        return Err("record checksum mismatch".to_string());
    }
    let seq = get_u64(payload, 0).ok_or("payload too short for seq")?;
    if payload.get(8) == Some(&TAG_COMMIT) {
        if payload.len() != 9 {
            return Err(format!(
                "commit marker with trailing bytes ({} of 9)",
                payload.len()
            ));
        }
        return Ok((WalRecord::Commit(seq), RECORD_OVERHEAD + len));
    }
    let op = decode_op(&payload[8..])?;
    Ok((WalRecord::Op(seq, op), RECORD_OVERHEAD + len))
}

/// Everything a scan of one segment learned.
#[derive(Debug, Clone, Default)]
pub struct SegmentScan {
    /// First sequence number the header declares.
    pub first_seq: u64,
    /// Committed records in order: op records covered by a commit marker.
    pub records: Vec<(u64, UpdateOp)>,
    /// Well-formed op records after the last commit marker. Their group
    /// commit never completed, so they were never acknowledged — recovery
    /// must NOT apply them.
    pub uncommitted_records: u64,
    /// Bytes spanned by the uncommitted tail records.
    pub uncommitted_bytes: u64,
    /// Quarantined torn/corrupt regions (0 or 1: scan stops at the first).
    pub quarantined_frames: u64,
    /// Bytes in the quarantined region.
    pub quarantined_bytes: u64,
    /// Why the scan stopped early, if it did.
    pub note: Option<String>,
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Scans one segment image. Returns `Err` only if the 16-byte header itself
/// is missing or invalid (the whole file is then quarantined by the caller);
/// torn or corrupt record tails are reported inside the `Ok` scan, never as
/// errors and never as panics.
pub fn scan_segment(bytes: &[u8]) -> io::Result<SegmentScan> {
    if bytes.len() < SEGMENT_HEADER {
        return Err(bad(format!(
            "segment header truncated: {} of {SEGMENT_HEADER} bytes",
            bytes.len()
        )));
    }
    if &bytes[0..4] != SEGMENT_MAGIC {
        return Err(bad("bad segment magic".to_string()));
    }
    let version = get_u32(bytes, 4).unwrap_or(0);
    if version != WAL_VERSION {
        return Err(bad(format!(
            "unsupported WAL version {version} (expected {WAL_VERSION})"
        )));
    }
    let first_seq = get_u64(bytes, 8).unwrap_or(0);
    let mut scan = SegmentScan {
        first_seq,
        ..SegmentScan::default()
    };
    let mut off = SEGMENT_HEADER;
    let mut last_seq: Option<u64> = None;
    // Op records are provisional until a commit marker covers them.
    let mut provisional: Vec<(u64, UpdateOp)> = Vec::new();
    let mut provisional_start = off;
    while off < bytes.len() {
        match decode_record(&bytes[off..]) {
            Ok((WalRecord::Op(seq, op), used)) => {
                let monotonic = last_seq.map_or(seq >= first_seq, |l| seq > l);
                if !monotonic {
                    scan.quarantined_frames = 1;
                    scan.quarantined_bytes = (bytes.len() - off) as u64;
                    scan.note = Some(format!(
                        "non-monotonic sequence {seq} at byte {off}; quarantining tail"
                    ));
                    break;
                }
                last_seq = Some(seq);
                if provisional.is_empty() {
                    provisional_start = off;
                }
                provisional.push((seq, op));
                off += used;
            }
            Ok((WalRecord::Commit(cseq), used)) => {
                let monotonic = last_seq.is_none_or(|l| cseq >= l);
                if !monotonic || provisional.iter().any(|(s, _)| *s > cseq) {
                    scan.quarantined_frames = 1;
                    scan.quarantined_bytes = (bytes.len() - off) as u64;
                    scan.note = Some(format!(
                        "commit marker for {cseq} behind live records at byte {off}; \
                         quarantining tail"
                    ));
                    break;
                }
                scan.records.append(&mut provisional);
                off += used;
                provisional_start = off;
            }
            Err(why) => {
                // First bad frame: framing downstream is untrustworthy, so
                // the whole remainder is one quarantined region.
                scan.quarantined_frames = 1;
                scan.quarantined_bytes = (bytes.len() - off) as u64;
                scan.note = Some(format!("at byte {off}: {why}"));
                break;
            }
        }
    }
    if !provisional.is_empty() {
        scan.uncommitted_records = provisional.len() as u64;
        scan.uncommitted_bytes = (off.min(bytes.len()) - provisional_start) as u64;
        let first_unc = provisional[0].0;
        let prior = scan.note.take();
        scan.note = Some(match prior {
            Some(p) => format!(
                "{p}; {} uncommitted tail record(s) from seq {first_unc} dropped",
                provisional.len()
            ),
            None => format!(
                "{} uncommitted tail record(s) from seq {first_unc} dropped (no commit marker)",
                provisional.len()
            ),
        });
    }
    Ok(scan)
}

fn encode_segment_header(first_seq: u64) -> Vec<u8> {
    let mut h = Vec::with_capacity(SEGMENT_HEADER);
    h.extend_from_slice(SEGMENT_MAGIC);
    put_u32(&mut h, WAL_VERSION);
    put_u64(&mut h, first_seq);
    h
}

/// Group-commit WAL writer.
///
/// `append` assigns sequence numbers and buffers records; `commit` makes the
/// buffer durable with one fsync and returns the highest durable sequence.
/// On a commit error the buffered records are discarded (their ops were
/// never acknowledged) and the writer rotates to a fresh segment before the
/// next append reaches storage, so a torn tail never gets live records
/// appended after it.
#[derive(Debug)]
pub struct WalWriter {
    active: String,
    active_bytes: u64,
    rotate_bytes: u64,
    next_seq: u64,
    committed: u64,
    pending: Vec<u8>,
    pending_count: u64,
    poisoned: bool,
}

impl WalWriter {
    /// Opens a writer that will assign sequence numbers starting at
    /// `next_seq` (recovery passes `last replayed + 1`; a fresh log passes
    /// 1). Always starts a new segment — the previous tail's durability is
    /// unknown, and segments are cheap.
    pub fn open(
        storage: &mut dyn Storage,
        next_seq: u64,
        rotate_bytes: u64,
    ) -> io::Result<WalWriter> {
        let mut w = WalWriter {
            active: String::new(),
            active_bytes: 0,
            rotate_bytes: rotate_bytes.max(SEGMENT_HEADER as u64 + 1),
            next_seq: next_seq.max(1),
            committed: next_seq.max(1) - 1,
            pending: Vec::new(),
            pending_count: 0,
            poisoned: false,
        };
        w.start_segment(storage, w.next_seq)?;
        Ok(w)
    }

    fn start_segment(&mut self, storage: &mut dyn Storage, first_seq: u64) -> io::Result<()> {
        let name = segment_name(first_seq);
        let header = encode_segment_header(first_seq);
        // Atomic publish: a torn header fsync followed by a retrying append
        // would leave a garbage-prefixed segment that could later receive
        // acknowledged records — which recovery would then quarantine
        // wholesale. `write_atomic` makes header creation all-or-nothing.
        storage.write_atomic(&name, &header)?;
        self.active = name;
        self.active_bytes = header.len() as u64;
        self.poisoned = false;
        Ok(())
    }

    /// Name of the segment currently receiving appends.
    pub fn active_segment(&self) -> &str {
        &self.active
    }

    /// Next sequence number `append` will hand out.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Highest sequence number known durable.
    pub fn committed_seq(&self) -> u64 {
        self.committed
    }

    /// Records buffered since the last commit.
    pub fn pending_records(&self) -> u64 {
        self.pending_count
    }

    /// Bytes buffered since the last commit.
    pub fn pending_bytes(&self) -> u64 {
        self.pending.len() as u64
    }

    /// Assigns the op a sequence number and buffers its record. Nothing is
    /// durable until [`WalWriter::commit`] returns `Ok`.
    pub fn append(&mut self, op: &UpdateOp) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let rec = encode_record(seq, op);
        self.pending.extend_from_slice(&rec);
        self.pending_count += 1;
        seq
    }

    /// Group commit: one storage append plus one fsync for every record
    /// buffered since the last commit. Returns the highest durable sequence
    /// number. On `Err`, the buffered records are **discarded** — their
    /// sequence numbers are burned and the writer will rotate to a fresh
    /// segment — so the caller must treat those ops as never accepted.
    pub fn commit(&mut self, storage: &mut dyn Storage) -> io::Result<u64> {
        if self.poisoned {
            // Previous commit failed; the active segment may end in a torn
            // frame. Never append live records after garbage — rotate first.
            let first = self.next_seq - self.pending_count;
            if let Err(e) = self.start_segment(storage, first) {
                self.discard_pending();
                return Err(e);
            }
        }
        if self.pending.is_empty() {
            return Ok(self.committed);
        }
        let mut batch = std::mem::take(&mut self.pending);
        // Trailing commit marker: recovery only applies op records a marker
        // covers, so a torn batch (failed fsync keeping a prefix) can never
        // resurrect records whose commit — and therefore whose ack — never
        // happened.
        batch.extend_from_slice(&encode_commit(self.next_seq - 1));
        let count = self.pending_count;
        self.pending_count = 0;
        if let Err(e) = storage.append(&self.active, &batch) {
            self.poison(count);
            return Err(e);
        }
        if let Err(e) = storage.sync(&self.active) {
            self.poison(count);
            return Err(e);
        }
        self.active_bytes += batch.len() as u64;
        self.committed = self.next_seq - 1;
        Ok(self.committed)
    }

    fn poison(&mut self, _burned: u64) {
        // Sequence numbers of the discarded records stay burned: monotonic,
        // not contiguous, is the log invariant.
        self.poisoned = true;
    }

    fn discard_pending(&mut self) {
        self.pending.clear();
        self.pending_count = 0;
    }

    /// True if the active segment has grown past the rotation threshold.
    pub fn wants_rotation(&self) -> bool {
        self.active_bytes >= self.rotate_bytes
    }

    /// Starts a fresh segment whose first sequence is the next unassigned
    /// (or first pending) sequence number. Called after a size threshold or
    /// a checkpoint; with an empty pending buffer every record in older
    /// segments is committed, so a covering checkpoint lets them be deleted.
    pub fn rotate(&mut self, storage: &mut dyn Storage) -> io::Result<()> {
        let first = self.next_seq - self.pending_count;
        self.start_segment(storage, first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::SimStorage;

    fn ops() -> Vec<UpdateOp> {
        vec![
            UpdateOp::AddEdge(1, 2, 3),
            UpdateOp::DeleteEdge(4, 5),
            UpdateOp::Reweight(6, 7, 8),
            UpdateOp::AddVertex {
                anchors: vec![(1, 1), (2, 9)],
            },
            UpdateOp::AddVertex { anchors: vec![] },
            UpdateOp::DeleteVertex(3),
        ]
    }

    #[test]
    fn record_codec_round_trips_every_op() {
        for (i, op) in ops().into_iter().enumerate() {
            let seq = (i as u64 + 1) * 7;
            let rec = encode_record(seq, &op);
            let (r, used) = match decode_record(&rec) {
                Ok(v) => v,
                Err(e) => panic!("decode {op:?}: {e}"),
            };
            assert_eq!(used, rec.len());
            assert_eq!(r, WalRecord::Op(seq, op));
        }
        let marker = encode_commit(99);
        assert_eq!(
            decode_record(&marker).map(|(r, _)| r),
            Ok(WalRecord::Commit(99))
        );
    }

    #[test]
    fn truncated_record_is_err_not_panic() {
        let rec = encode_record(9, &UpdateOp::AddEdge(1, 2, 3));
        for cut in 0..rec.len() {
            assert!(decode_record(&rec[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bit_flips_are_err_or_detected() {
        let rec = encode_record(42, &UpdateOp::Reweight(10, 20, 30));
        for bit in 0..rec.len() * 8 {
            let mut r = rec.clone();
            r[bit / 8] ^= 1 << (bit % 8);
            // A flip in the length prefix may still frame a valid-looking
            // record only if the CRC also matches — astronomically
            // unlikely and impossible for a single bit here.
            if let Ok((rec, _)) = decode_record(&r) {
                panic!("flip at bit {bit} accepted: {rec:?}");
            }
        }
    }

    #[test]
    fn writer_commits_and_scan_reads_back() {
        let sim = SimStorage::new();
        let mut s = sim.clone();
        let mut w = match WalWriter::open(&mut s, 1, 1 << 20) {
            Ok(w) => w,
            Err(e) => panic!("open: {e}"),
        };
        let mut seqs = Vec::new();
        for op in ops() {
            seqs.push(w.append(&op));
        }
        assert_eq!(w.committed_seq(), 0);
        let committed = w.commit(&mut s).unwrap_or(0);
        assert_eq!(committed, 6);
        let bytes = s.read(w.active_segment()).unwrap_or_default();
        let scan = match scan_segment(&bytes) {
            Ok(sc) => sc,
            Err(e) => panic!("scan: {e}"),
        };
        assert_eq!(scan.first_seq, 1);
        assert_eq!(scan.quarantined_frames, 0);
        assert_eq!(
            scan.records.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            seqs
        );
        assert_eq!(
            scan.records
                .iter()
                .map(|(_, o)| o.clone())
                .collect::<Vec<_>>(),
            ops()
        );
    }

    #[test]
    fn uncommitted_records_die_with_the_process() {
        let sim = SimStorage::new();
        let mut s = sim.clone();
        let mut w = WalWriter::open(&mut s, 1, 1 << 20).expect("open failed");
        w.append(&UpdateOp::AddEdge(1, 2, 1));
        w.commit(&mut s).ok();
        w.append(&UpdateOp::AddEdge(3, 4, 1)); // never committed
        sim.kill();
        let bytes = s.read(w.active_segment()).unwrap_or_default();
        let scan = scan_segment(&bytes).expect("scan failed");
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].0, 1);
    }

    #[test]
    fn torn_tail_is_quarantined_not_panicked() {
        let sim = SimStorage::new();
        let mut s = sim.clone();
        let mut w = match WalWriter::open(&mut s, 1, 1 << 20) {
            Ok(w) => w,
            Err(e) => panic!("open: {e}"),
        };
        // Two separate group commits; tear inside the second batch.
        w.append(&UpdateOp::AddEdge(1, 2, 1));
        w.commit(&mut s).ok();
        w.append(&UpdateOp::AddEdge(2, 3, 1));
        w.commit(&mut s).ok();
        let full = s.read(w.active_segment()).unwrap_or_default();
        let batch1_end = SEGMENT_HEADER
            + encode_record(1, &UpdateOp::AddEdge(1, 2, 1)).len()
            + encode_commit(1).len();
        for cut in batch1_end + 1..full.len() {
            let scan = match scan_segment(&full[..cut]) {
                Ok(sc) => sc,
                Err(e) => panic!("cut {cut}: {e}"),
            };
            // Only the marker-covered first batch survives; the torn second
            // batch is dropped — as torn garbage, as an uncommitted tail,
            // or both — never replayed, never a panic.
            assert_eq!(scan.records.len(), 1, "cut {cut}");
            assert_eq!(scan.records[0].0, 1, "cut {cut}");
            assert_eq!(
                scan.quarantined_bytes + scan.uncommitted_bytes,
                (cut - batch1_end) as u64,
                "cut {cut}: dropped-byte accounting"
            );
            assert!(
                scan.quarantined_frames + scan.uncommitted_records >= 1,
                "cut {cut}"
            );
            assert!(scan.note.is_some(), "cut {cut}");
        }
        // The untorn segment replays both batches.
        let scan = match scan_segment(&full) {
            Ok(sc) => sc,
            Err(e) => panic!("full scan: {e}"),
        };
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.uncommitted_records, 0);
        assert_eq!(scan.quarantined_frames, 0);
    }

    #[test]
    fn failed_commit_burns_seqs_and_rotates() {
        use crate::fault::{StorageFaultPlan, StorageFaults};
        // Fail the first data fsync, then let everything succeed. The open
        // header fsync draws first, so use p=1.0 for exactly two draws via a
        // plan that always fails — instead, drive it manually: fail all
        // fsyncs until the first commit error, then clear faults.
        let plan = StorageFaultPlan::new(
            1,
            StorageFaults {
                p_fail_fsync: 0.45,
                ..StorageFaults::none()
            },
        );
        let sim = SimStorage::with_faults(plan);
        let mut s = sim.clone();
        let mut w = match WalWriter::open(&mut s, 1, 1 << 20) {
            Ok(w) => w,
            Err(_) => return, // header fsync failed on this seed; fine
        };
        let mut committed_ops: Vec<u64> = Vec::new();
        for i in 0..40u32 {
            let seq = w.append(&UpdateOp::AddEdge(i, i + 1, 1));
            match w.commit(&mut s) {
                Ok(c) => {
                    assert!(c >= seq);
                    committed_ops.push(seq);
                }
                Err(_) => { /* seq burned */ }
            }
        }
        assert!(!committed_ops.is_empty(), "some commits must succeed");
        // Replay every segment: exactly the committed seqs, in order.
        let mut replayed = Vec::new();
        let names = s.list().unwrap_or_default();
        for name in names {
            if parse_segment_name(&name).is_none() {
                continue;
            }
            let bytes = match s.read(&name) {
                Ok(b) => b,
                Err(_) => continue,
            };
            if let Ok(scan) = scan_segment(&bytes) {
                replayed.extend(scan.records.iter().map(|(q, _)| *q));
            }
        }
        replayed.sort_unstable();
        assert_eq!(replayed, committed_ops, "durable set == acked set");
    }

    #[test]
    fn rotation_by_size_creates_new_segments() {
        let sim = SimStorage::new();
        let mut s = sim.clone();
        let mut w = match WalWriter::open(&mut s, 1, 64) {
            Ok(w) => w,
            Err(e) => panic!("open: {e}"),
        };
        for i in 0..20u32 {
            w.append(&UpdateOp::AddEdge(i, i + 1, 1));
            w.commit(&mut s).ok();
            if w.wants_rotation() {
                w.rotate(&mut s).ok();
            }
        }
        let segments = s
            .list()
            .unwrap_or_default()
            .into_iter()
            .filter(|n| parse_segment_name(n).is_some())
            .count();
        assert!(segments > 1, "expected multiple segments, got {segments}");
    }
}
