//! Crash-consistent durability for the anytime-anywhere serve path.
//!
//! PR 6 made `aa serve` a resident process whose admission contract reports
//! `Accepted` — but acknowledged updates lived only in memory, so a crash
//! silently lost them. This crate closes that gap with the classic
//! WAL-plus-checkpoint recipe, specialised for the engine's deterministic
//! ingest pipeline:
//!
//! * [`wal`] — a CRC32-framed, length-prefixed **write-ahead log** of
//!   [`aa_ingest::UpdateOp`]s. Records are appended to an in-memory group
//!   and made durable with one `fsync` per commit (group commit), so
//!   durability costs one storage round-trip per serve turn, not per op.
//!   An update may only be acknowledged once [`WalWriter::commit`] has
//!   returned its sequence number.
//! * [`store`] — [`DurableLog`], the orchestrator owning the WAL plus
//!   **atomic on-disk checkpoints**: engine state framed with
//!   [`aa_core::checkpoint`] framing, written via temp-file + fsync +
//!   rename, stamped with the WAL sequence it covers. A checkpoint rotates
//!   the WAL and compacts fully-covered segments.
//! * [`recover`] — startup **recovery**: load the newest valid checkpoint
//!   (quarantining corrupt ones), replay the WAL suffix through an
//!   [`aa_ingest::IngestPipeline`], and quarantine — never panic on — torn
//!   tails and corrupt frames.
//! * [`storage`] — the [`Storage`] abstraction: [`DiskStorage`] for real
//!   directories and [`SimStorage`], an in-memory double-buffered model
//!   (durable vs. not-yet-fsynced bytes) whose [`SimStorage::kill`]
//!   simulates `kill -9` at any point.
//! * [`fault`] — [`StorageFaultPlan`], a seeded deterministic fault
//!   injector (torn writes, short reads, bit flips, failed fsync/rename)
//!   extending the runtime FaultPlan idiom to I/O.
//!
//! Everything in this crate is deterministic: no wall clocks, no unseeded
//! randomness, `BTreeMap` for all keyed state. Recovery decisions are pure
//! functions of the bytes on storage.

#![forbid(unsafe_code)]

pub mod fault;
pub mod recover;
pub mod storage;
pub mod store;
pub mod wal;

pub use fault::{StorageFaultPlan, StorageFaults};
pub use recover::{recover, Recovered, RecoveryReport};
pub use storage::{atomic_write_file, DiskStorage, SimStats, SimStorage, Storage};
pub use store::{DurabilityConfig, DurableLog};
pub use wal::{
    decode_record, encode_commit, encode_record, scan_segment, SegmentScan, WalRecord, WalWriter,
    MAX_RECORD_BYTES,
};
