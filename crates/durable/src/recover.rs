//! Startup recovery: newest valid checkpoint + WAL suffix replay.
//!
//! Recovery is a pure function of the bytes on storage:
//!
//! 1. **Sweep debris** — `*.tmp` files are leftovers of interrupted atomic
//!    writes; delete them.
//! 2. **Load the newest valid checkpoint** — try checkpoints newest-first;
//!    any that fails its frame/CRC/parse checks is *quarantined* (counted,
//!    noted, left in place) and the next older one is tried. With no valid
//!    checkpoint, recovery starts from the caller's base engine at covered
//!    sequence 0.
//! 3. **Replay the WAL suffix** — scan segments in sequence order, skip
//!    records with `seq <= covered`, push the rest through a fresh
//!    [`IngestPipeline`] against the engine (the pipeline's coalescing is
//!    exactness-preserving, so replay batching cannot change the result).
//!    Torn tails and corrupt frames quarantine the remainder of their
//!    segment — a descriptive note, never a panic.
//!
//! The recovered engine is *oracle-exact*: identical closeness state (after
//! convergence) to a process that applied exactly the acknowledged ops and
//! never died. The kill-sweep differential test in `tests/durability.rs`
//! asserts this at every turn-boundary kill point under write-side faults.

use crate::storage::Storage;
use crate::store::{decode_checkpoint, parse_checkpoint_name};
use crate::wal::{parse_segment_name, scan_segment};
use aa_core::AnytimeEngine;
use aa_ingest::{DrainPolicy, IngestConfig, IngestPipeline};
use aa_obs::MetricsRegistry;

/// What recovery found and did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Covered sequence of the checkpoint used (0 = none, started from base).
    pub checkpoint_seq: u64,
    /// Whether a checkpoint was loaded (vs. starting from the base engine).
    pub used_checkpoint: bool,
    /// Checkpoint files that failed validation and were skipped.
    pub checkpoints_quarantined: u64,
    /// WAL segments scanned.
    pub segments_scanned: u64,
    /// WAL segments whose header failed validation (file quarantined).
    pub segments_quarantined: u64,
    /// Records replayed into the engine.
    pub records_replayed: u64,
    /// Records skipped because the checkpoint already covered them.
    pub records_skipped: u64,
    /// Well-formed records dropped because no commit marker covered them
    /// (their group commit — and so their acknowledgement — never happened).
    pub records_uncommitted: u64,
    /// Torn/corrupt frame regions quarantined across all segments.
    pub frames_quarantined: u64,
    /// Bytes inside quarantined regions.
    pub bytes_quarantined: u64,
    /// Interrupted atomic-write temp files swept.
    pub tmp_files_removed: u64,
    /// Human-readable notes (one per quarantine/skip decision).
    pub notes: Vec<String>,
}

/// A recovered engine plus everything learned on the way.
pub struct Recovered {
    /// Engine with all durable acknowledged ops applied (pre-convergence:
    /// callers run supersteps to taste, exactly like after live ingest).
    pub engine: AnytimeEngine,
    /// Sequence number the reopened WAL must hand out next.
    pub next_seq: u64,
    /// What happened.
    pub report: RecoveryReport,
    /// `aa_recovery_*` / quarantine metrics to merge into the serve registry.
    pub metrics: MetricsRegistry,
}

fn note(report: &mut RecoveryReport, msg: String) {
    report.notes.push(msg);
}

/// Runs recovery against `storage`. `base` is the engine built from the
/// graph file, used when no valid checkpoint exists; `ingest` configures the
/// replay pipeline (its strategy must match the serving config so predicted
/// vertex ids line up). Returns an error only for unrecoverable conditions
/// (storage itself unreadable, or replay of a *valid* record rejected —
/// which would mean the log and engine disagree about projected state).
pub fn recover(
    storage: &mut dyn Storage,
    base: AnytimeEngine,
    ingest: IngestConfig,
) -> Result<Recovered, String> {
    let mut report = RecoveryReport::default();
    let names = storage.list().map_err(|e| format!("list storage: {e}"))?;

    // 1. Sweep interrupted atomic-write debris.
    for name in &names {
        if name.ends_with(".tmp") && storage.remove(name).is_ok() {
            report.tmp_files_removed += 1;
        }
    }

    // 2. Newest valid checkpoint wins; invalid ones are quarantined.
    let mut ckpts: Vec<(u64, &String)> = names
        .iter()
        .filter_map(|n| parse_checkpoint_name(n).map(|s| (s, n)))
        .collect();
    ckpts.sort_unstable_by_key(|&(seq, _)| std::cmp::Reverse(seq));
    let config = base.config().clone();
    let mut engine = base;
    let mut covered = 0u64;
    for (seq, name) in ckpts {
        let bytes = match storage.read(name) {
            Ok(b) => b,
            Err(e) => {
                report.checkpoints_quarantined += 1;
                note(&mut report, format!("checkpoint {name}: unreadable: {e}"));
                continue;
            }
        };
        match decode_checkpoint(&bytes, config.clone()) {
            Ok((stamped, restored)) => {
                if stamped != seq {
                    report.checkpoints_quarantined += 1;
                    note(
                        &mut report,
                        format!("checkpoint {name}: stamp {stamped} disagrees with name"),
                    );
                    continue;
                }
                engine = restored;
                covered = stamped;
                report.used_checkpoint = true;
                report.checkpoint_seq = stamped;
                break;
            }
            Err(e) => {
                report.checkpoints_quarantined += 1;
                note(&mut report, format!("checkpoint {name}: {e}"));
            }
        }
    }
    if !engine.is_initialized() {
        engine.initialize();
    }

    // 3. Replay the WAL suffix in segment order.
    let mut segments: Vec<(u64, &String)> = names
        .iter()
        .filter_map(|n| parse_segment_name(n).map(|s| (s, n)))
        .collect();
    segments.sort_unstable();
    // Replay must never shed: size the queue to swallow any suffix.
    let replay_cfg = IngestConfig {
        queue_cap: usize::MAX / 2,
        high_watermark: usize::MAX / 2,
        policy: DrainPolicy::SizeTriggered(64),
        ..ingest
    };
    let mut pipeline =
        IngestPipeline::new(replay_cfg).map_err(|e| format!("replay pipeline: {e}"))?;
    let mut last_seq = covered;
    let mut next_seq = covered + 1;
    for (_, name) in segments {
        let bytes = match storage.read(name) {
            Ok(b) => b,
            Err(e) => {
                report.segments_quarantined += 1;
                note(&mut report, format!("segment {name}: unreadable: {e}"));
                continue;
            }
        };
        let scan = match scan_segment(&bytes) {
            Ok(sc) => sc,
            Err(e) => {
                report.segments_quarantined += 1;
                report.bytes_quarantined += bytes.len() as u64;
                note(&mut report, format!("segment {name}: {e}"));
                continue;
            }
        };
        report.segments_scanned += 1;
        report.records_uncommitted += scan.uncommitted_records;
        report.frames_quarantined += scan.quarantined_frames;
        report.bytes_quarantined += scan.quarantined_bytes + scan.uncommitted_bytes;
        if let Some(why) = scan.note {
            note(&mut report, format!("segment {name}: {why}"));
        }
        for (seq, op) in scan.records {
            if seq <= covered {
                report.records_skipped += 1;
                continue;
            }
            if seq <= last_seq {
                // Overlapping segments would replay an op twice; quarantine
                // instead (this cannot happen with our writer, but recovery
                // trusts nothing).
                report.frames_quarantined += 1;
                note(
                    &mut report,
                    format!("segment {name}: record {seq} <= already-replayed {last_seq}; skipped"),
                );
                continue;
            }
            let outcome = pipeline
                .push(&engine, op.clone())
                .map_err(|e| format!("replay record {seq} ({op:?}): {e}"))?;
            if !outcome.admission.is_admitted() {
                return Err(format!(
                    "replay record {seq} shed by pipeline — queue misconfigured"
                ));
            }
            pipeline
                .maybe_flush(&mut engine)
                .map_err(|e| format!("replay flush at record {seq}: {e}"))?;
            last_seq = seq;
            report.records_replayed += 1;
            next_seq = seq + 1;
        }
    }
    // Barrier-flush whatever the drain policy left buffered.
    pipeline
        .flush(&mut engine)
        .map_err(|e| format!("final replay flush: {e}"))?;

    let mut metrics = MetricsRegistry::new();
    metrics.set_help("aa_recoveries_total", "Recovery runs completed");
    metrics.set_help(
        "aa_wal_replayed_records_total",
        "WAL records replayed at recovery",
    );
    metrics.set_help(
        "aa_wal_replay_skipped_total",
        "Records already covered by the checkpoint",
    );
    metrics.set_help(
        "aa_wal_uncommitted_records_total",
        "Well-formed records dropped for lack of a commit marker",
    );
    metrics.set_help(
        "aa_wal_quarantined_frames_total",
        "Torn/corrupt WAL frame regions quarantined",
    );
    metrics.set_help(
        "aa_wal_quarantined_bytes_total",
        "Bytes inside quarantined WAL regions",
    );
    metrics.set_help(
        "aa_checkpoint_quarantined_total",
        "Checkpoint files that failed validation",
    );
    metrics.set_help(
        "aa_recovery_checkpoint_seq",
        "Covered seq of the checkpoint recovery used",
    );
    metrics.inc_counter("aa_recoveries_total", &[], 1);
    metrics.inc_counter(
        "aa_wal_replayed_records_total",
        &[],
        report.records_replayed,
    );
    metrics.inc_counter("aa_wal_replay_skipped_total", &[], report.records_skipped);
    metrics.inc_counter(
        "aa_wal_uncommitted_records_total",
        &[],
        report.records_uncommitted,
    );
    metrics.inc_counter(
        "aa_wal_quarantined_frames_total",
        &[],
        report.frames_quarantined,
    );
    metrics.inc_counter(
        "aa_wal_quarantined_bytes_total",
        &[],
        report.bytes_quarantined,
    );
    metrics.inc_counter(
        "aa_checkpoint_quarantined_total",
        &[],
        report.checkpoints_quarantined,
    );
    metrics.set_gauge(
        "aa_recovery_checkpoint_seq",
        &[],
        report.checkpoint_seq as f64,
    );

    Ok(Recovered {
        engine,
        next_seq,
        report,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::SimStorage;
    use crate::store::{DurabilityConfig, DurableLog};
    use aa_core::EngineConfig;
    use aa_graph::generators;
    use aa_ingest::UpdateOp;

    fn base() -> AnytimeEngine {
        let g = generators::barabasi_albert(24, 2, 1, 9);
        let mut e = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: 2,
                ..Default::default()
            },
        );
        e.initialize();
        e
    }

    fn converge(e: &mut AnytimeEngine) {
        e.run_to_convergence(100_000);
    }

    fn closeness(e: &mut AnytimeEngine) -> Vec<f64> {
        e.snapshot().closeness
    }

    #[test]
    fn empty_storage_recovers_to_base() {
        let sim = SimStorage::new();
        let mut s = sim.clone();
        let r = match recover(&mut s, base(), IngestConfig::default()) {
            Ok(r) => r,
            Err(e) => panic!("recover: {e}"),
        };
        assert!(!r.report.used_checkpoint);
        assert_eq!(r.next_seq, 1);
        assert_eq!(r.report.records_replayed, 0);
        assert_eq!(
            r.engine.graph().vertices().count(),
            base().graph().vertices().count()
        );
    }

    #[test]
    fn replay_after_kill_matches_oracle() {
        let sim = SimStorage::new();
        let mut s = sim.clone();
        let mut log = match DurableLog::open(&mut s, 1, DurabilityConfig::default()) {
            Ok(l) => l,
            Err(e) => panic!("open: {e}"),
        };
        let ops = vec![
            UpdateOp::AddEdge(0, 9, 2),
            UpdateOp::DeleteEdge(0, 1),
            UpdateOp::AddVertex {
                anchors: vec![(3, 1), (4, 2)],
            },
            UpdateOp::Reweight(2, 0, 5),
        ];
        // Durable path: log + commit, never applied before the "crash".
        for op in &ops {
            log.append(op);
        }
        log.commit(&mut s).ok();
        sim.kill();

        let r = match recover(&mut s, base(), IngestConfig::default()) {
            Ok(r) => r,
            Err(e) => panic!("recover: {e}"),
        };
        assert_eq!(r.report.records_replayed, 4);
        assert_eq!(r.next_seq, 5);
        let mut recovered = r.engine;
        converge(&mut recovered);

        // Oracle: a process that never died, applying the same ops.
        let mut oracle = base();
        let mut p = match IngestPipeline::new(IngestConfig::default()) {
            Ok(p) => p,
            Err(e) => panic!("pipeline: {e}"),
        };
        for op in &ops {
            p.push(&oracle, op.clone()).ok();
        }
        p.flush(&mut oracle).ok();
        converge(&mut oracle);

        let a = closeness(&mut recovered);
        let b = closeness(&mut oracle);
        assert_eq!(a.len(), b.len());
        for (u, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!((x - y).abs() < 1e-12, "vertex {u}: {x} vs {y}");
        }
    }

    #[test]
    fn checkpoint_skips_covered_records() {
        let sim = SimStorage::new();
        let mut s = sim.clone();
        let mut engine = base();
        let mut log = match DurableLog::open(&mut s, 1, DurabilityConfig::default()) {
            Ok(l) => l,
            Err(e) => panic!("open: {e}"),
        };
        let mut p = match IngestPipeline::new(IngestConfig::default()) {
            Ok(p) => p,
            Err(e) => panic!("pipeline: {e}"),
        };
        // Two committed+applied ops, then a checkpoint, then one more.
        for op in [UpdateOp::AddEdge(0, 9, 1), UpdateOp::DeleteEdge(1, 0)] {
            log.append(&op);
            p.push(&engine, op).ok();
        }
        log.commit(&mut s).ok();
        p.flush(&mut engine).ok();
        log.checkpoint(&mut s, &engine).ok();
        log.append(&UpdateOp::AddEdge(2, 9, 3));
        log.commit(&mut s).ok();
        sim.kill();

        let r = match recover(&mut s, base(), IngestConfig::default()) {
            Ok(r) => r,
            Err(e) => panic!("recover: {e}"),
        };
        assert!(r.report.used_checkpoint);
        assert_eq!(r.report.checkpoint_seq, 2);
        assert_eq!(r.report.records_replayed, 1);
        assert_eq!(
            r.report.records_skipped, 0,
            "compaction removed covered records"
        );
        assert_eq!(r.next_seq, 4);
        assert!(r.engine.graph().edge_weight(2, 9).is_some());
    }

    #[test]
    fn corrupt_checkpoint_quarantined_falls_back() {
        let sim = SimStorage::new();
        let mut s = sim.clone();
        let mut engine = base();
        let mut log = match DurableLog::open(
            &mut s,
            1,
            DurabilityConfig {
                keep_checkpoints: 2,
                ..DurabilityConfig::default()
            },
        ) {
            Ok(l) => l,
            Err(e) => panic!("open: {e}"),
        };
        let mut p = match IngestPipeline::new(IngestConfig::default()) {
            Ok(p) => p,
            Err(e) => panic!("pipeline: {e}"),
        };
        // Checkpoint at seq 1, then at seq 2; corrupt the newer one.
        for op in [UpdateOp::AddEdge(0, 9, 1), UpdateOp::AddEdge(1, 9, 1)] {
            log.append(&op);
            p.push(&engine, op).ok();
            log.commit(&mut s).ok();
            p.flush(&mut engine).ok();
            log.checkpoint(&mut s, &engine).ok();
        }
        let newest = crate::store::checkpoint_name(2);
        assert!(sim.flip_durable_bit(&newest, 200), "flip a body bit");
        sim.kill();

        let r = match recover(&mut s, base(), IngestConfig::default()) {
            Ok(r) => r,
            Err(e) => panic!("recover: {e}"),
        };
        assert_eq!(r.report.checkpoints_quarantined, 1);
        assert!(r.report.used_checkpoint);
        assert_eq!(r.report.checkpoint_seq, 1);
        // Compaction only deletes WAL segments covered by the *oldest
        // retained* checkpoint, so op 2's record survives the fallback and
        // is replayed: no acknowledged op is lost to a single corrupt
        // checkpoint.
        assert_eq!(r.report.records_replayed, 1);
        assert!(r.engine.graph().edge_weight(0, 9).is_some());
        assert!(r.engine.graph().edge_weight(1, 9).is_some());
        assert_eq!(
            r.metrics
                .counter_value("aa_checkpoint_quarantined_total", &[]),
            1
        );
    }

    #[test]
    fn torn_wal_tail_quarantined_in_metrics() {
        let sim = SimStorage::new();
        let mut s = sim.clone();
        let mut log = match DurableLog::open(&mut s, 1, DurabilityConfig::default()) {
            Ok(l) => l,
            Err(e) => panic!("open: {e}"),
        };
        log.append(&UpdateOp::AddEdge(0, 9, 1));
        log.commit(&mut s).ok();
        log.append(&UpdateOp::AddEdge(1, 9, 1));
        log.commit(&mut s).ok();
        sim.kill();
        // Manually tear the tail of the only segment: the cut lands inside
        // the second batch's commit marker, so its op record survives
        // complete but uncovered.
        let seg = crate::wal::segment_name(1);
        let full = sim.durable_len(&seg).unwrap_or(0);
        assert!(sim.truncate_durable(&seg, full - 3));

        let r = match recover(&mut s, base(), IngestConfig::default()) {
            Ok(r) => r,
            Err(e) => panic!("recover: {e}"),
        };
        assert_eq!(r.report.records_replayed, 1);
        assert_eq!(r.report.records_uncommitted, 1);
        assert_eq!(r.report.frames_quarantined, 1);
        assert!(r.report.bytes_quarantined > 0);
        assert!(!r.report.notes.is_empty());
        assert_eq!(
            r.metrics
                .counter_value("aa_wal_quarantined_frames_total", &[]),
            1
        );
    }
}
