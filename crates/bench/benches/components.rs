//! Component micro-benchmarks: the kernels each phase of the pipeline leans
//! on — sequential Dijkstra, the multilevel partitioner, Louvain, the
//! distance-vector relax kernel, the initial approximation, and a single
//! recombination step.

use aa_core::dv::relax_row;
use aa_core::{AnytimeEngine, EngineConfig};
use aa_graph::{algo, community, generators, INF};
use aa_partition::{BfsGrowPartitioner, MultilevelKWay, Partitioner};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn dijkstra_sssp(c: &mut Criterion) {
    let mut group = c.benchmark_group("dijkstra_sssp");
    for n in [500usize, 2000] {
        let g = generators::barabasi_albert(n, 3, 4, 7);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| algo::dijkstra(g, black_box(0)));
        });
    }
    group.finish();
}

fn partitioners(c: &mut Criterion) {
    let g = generators::barabasi_albert(2000, 2, 1, 11);
    let mut group = c.benchmark_group("partitioner");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.bench_function("multilevel_kway_p16", |b| {
        b.iter(|| MultilevelKWay::default().partition(&g, 16));
    });
    group.bench_function("bfs_grow_p16", |b| {
        b.iter(|| BfsGrowPartitioner.partition(&g, 16));
    });
    group.finish();
}

fn louvain_communities(c: &mut Criterion) {
    let g = generators::planted_partition(10, 50, 0.3, 0.005, 1, 13);
    c.bench_function("louvain_500v", |b| {
        b.iter(|| community::louvain(&g));
    });
}

fn relax_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("relax_row");
    for n in [2000usize, 50_000] {
        let src: Vec<u32> = (0..n as u32).map(|i| i % 97).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &src, |b, src| {
            let mut dst = vec![INF; src.len()];
            b.iter(|| relax_row(black_box(&mut dst), black_box(src), 3));
        });
    }
    group.finish();
}

fn initial_approximation(c: &mut Criterion) {
    let mut group = c.benchmark_group("initial_approximation");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.bench_function("n1000_p8", |b| {
        let g = generators::barabasi_albert(1000, 2, 1, 17);
        b.iter(|| {
            let mut e = AnytimeEngine::new(
                g.clone(),
                EngineConfig {
                    num_procs: 8,
                    ..Default::default()
                },
            );
            e.initialize();
            e.makespan_us()
        });
    });
    group.finish();
}

fn recombination_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("rc_step");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.bench_function("first_step_n1000_p8", |b| {
        let g = generators::barabasi_albert(1000, 2, 1, 19);
        let mut base = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: 8,
                ..Default::default()
            },
        );
        base.initialize();
        b.iter_batched(
            || {
                // Cheap clone is unavailable; re-run convergence instead:
                // measure the full converge-from-IA loop, dominated by the
                // first (all-rows) step.
                let g = generators::barabasi_albert(1000, 2, 1, 19);
                let mut e = AnytimeEngine::new(
                    g,
                    EngineConfig {
                        num_procs: 8,
                        ..Default::default()
                    },
                );
                e.initialize();
                e
            },
            |mut e| {
                e.rc_step();
                e.makespan_us()
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn delta_stepping_sssp(c: &mut Criterion) {
    let g = generators::barabasi_albert(2000, 3, 4, 7);
    let mut group = c.benchmark_group("delta_stepping_sssp");
    for delta in [1u32, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(delta), &delta, |b, &delta| {
            b.iter(|| aa_graph::centrality::delta_stepping(&g, black_box(0), delta));
        });
    }
    group.finish();
}

fn centrality_oracles(c: &mut Criterion) {
    let g = generators::barabasi_albert(400, 2, 1, 23);
    let mut group = c.benchmark_group("centrality_oracles");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.bench_function("betweenness_brandes", |b| {
        b.iter(|| aa_graph::centrality::betweenness_unweighted(&g));
    });
    group.bench_function("pagerank", |b| {
        b.iter(|| aa_graph::centrality::pagerank(&g, 0.85, 100, 1e-10));
    });
    group.bench_function("k_core", |b| {
        b.iter(|| aa_graph::centrality::k_core(&g));
    });
    group.finish();
}

fn clique_enumeration(c: &mut Criterion) {
    let g = generators::erdos_renyi_gnm(120, 700, 1, 29);
    let mut group = c.benchmark_group("maximal_cliques");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.bench_function("sequential_bron_kerbosch", |b| {
        b.iter(|| aa_graph::cliques::maximal_cliques(&g));
    });
    group.bench_function("distributed_p4", |b| {
        b.iter_batched(
            || {
                let mut e = AnytimeEngine::new(
                    g.clone(),
                    EngineConfig {
                        num_procs: 4,
                        ..Default::default()
                    },
                );
                e.initialize();
                e
            },
            |mut e| e.maximal_cliques(),
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn rmat_generator(c: &mut Criterion) {
    c.bench_function("rmat_scale12_40k_edges", |b| {
        b.iter(|| aa_graph::rmat::rmat(12, 40_000, aa_graph::rmat::RmatParams::default(), 1, 3));
    });
}

criterion_group!(
    components,
    dijkstra_sssp,
    delta_stepping_sssp,
    partitioners,
    louvain_communities,
    relax_kernel,
    centrality_oracles,
    clique_enumeration,
    rmat_generator,
    initial_approximation,
    recombination_step
);
criterion_main!(components);
