//! Ablation benches for the design choices DESIGN.md calls out: refinement
//! strategy, partitioner, communication schedule, message-size bound,
//! processor count, and Repartition-S flavour. Each reports the *virtual*
//! cluster makespan of the end-to-end pipeline (returned value) while
//! criterion tracks host wall time.

use aa_bench::workload::community_vertex_batch;
use aa_core::{
    AdditionStrategy, AnytimeEngine, EngineConfig, PartitionerKind, Refinement, RepartitionMode,
};
use aa_graph::generators;
use aa_logp::LogPParams;
use aa_runtime::ExchangeMode;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const N: usize = 600;
const SEED: u64 = 0xAB1A;

fn run_static(config: EngineConfig) -> f64 {
    let g = generators::barabasi_albert(N, 2, 1, SEED);
    let mut e = AnytimeEngine::new(g, config);
    e.initialize();
    e.run_to_convergence(96);
    assert!(e.is_converged());
    e.makespan_us()
}

/// WorklistRelax vs PivotPass refinement (the papers' Floyd–Warshall option).
fn ablation_recombination(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_recombination");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(800));
    for refinement in [Refinement::WorklistRelax, Refinement::PivotPass] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{refinement:?}")),
            &refinement,
            |b, &refinement| {
                b.iter(|| {
                    run_static(EngineConfig {
                        num_procs: 8,
                        refinement,
                        ..Default::default()
                    })
                });
            },
        );
    }
    group.finish();
}

/// Domain-decomposition partitioner quality → end-to-end cost.
fn ablation_partitioner(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_partitioner");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(800));
    for kind in [
        PartitionerKind::Multilevel,
        PartitionerKind::BfsGrow,
        PartitionerKind::RoundRobin,
        PartitionerKind::Hash,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    run_static(EngineConfig {
                        num_procs: 8,
                        partitioner: kind,
                        ..Default::default()
                    })
                });
            },
        );
    }
    group.finish();
}

/// The papers' serialized one-message-at-a-time schedule vs round-based
/// pairwise exchange.
fn ablation_exchange_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_exchange_schedule");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(800));
    for mode in [ExchangeMode::Serialized, ExchangeMode::RoundBased] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{mode:?}")),
            &mode,
            |b, &mode| {
                b.iter(|| {
                    run_static(EngineConfig {
                        num_procs: 8,
                        exchange: mode,
                        ..Default::default()
                    })
                });
            },
        );
    }
    group.finish();
}

/// Bounded message size `M` ("chosen such that the network remains lightly
/// loaded"): sweep the cap.
fn ablation_msg_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_msg_size");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(800));
    for kib in [4usize, 64, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(kib), &kib, |b, &kib| {
            b.iter(|| {
                run_static(EngineConfig {
                    num_procs: 8,
                    logp: LogPParams {
                        max_msg_bytes: kib * 1024,
                        ..LogPParams::ethernet_1gbe()
                    },
                    ..Default::default()
                })
            });
        });
    }
    group.finish();
}

/// Static-analysis scaling with the processor count.
fn ablation_proc_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_proc_count");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(800));
    for p in [2usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                run_static(EngineConfig {
                    num_procs: p,
                    ..Default::default()
                })
            });
        });
    }
    group.finish();
}

/// Repartition-S flavour: ParMETIS-style adaptive multilevel vs full fresh
/// repartition (label-remapped) vs flat refinement.
fn ablation_repartition_mode(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_repartition_mode");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(800));
    for mode in [
        RepartitionMode::AdaptiveMultilevel,
        RepartitionMode::FullRemap,
        RepartitionMode::Adaptive,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{mode:?}")),
            &mode,
            |b, &mode| {
                b.iter(|| {
                    let g = generators::barabasi_albert(N, 2, 1, SEED);
                    let mut e = AnytimeEngine::new(
                        g,
                        EngineConfig {
                            num_procs: 8,
                            repartition: mode,
                            ..Default::default()
                        },
                    );
                    e.initialize();
                    e.run_to_convergence(64);
                    let batch = community_vertex_batch(e.graph(), 30, SEED ^ 1);
                    e.add_vertices(&batch, AdditionStrategy::RepartitionS);
                    e.run_to_convergence(96);
                    assert!(e.is_converged());
                    e.makespan_us()
                });
            },
        );
    }
    group.finish();
}

/// Local SSSP algorithm inside the initial approximation: Dijkstra vs
/// Δ-stepping vs Bellman–Ford.
fn ablation_ia_algorithm(c: &mut Criterion) {
    use aa_core::IaAlgorithm;
    let mut group = c.benchmark_group("ablation_ia_algorithm");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(800));
    for (label, ia) in [
        ("dijkstra", IaAlgorithm::Dijkstra),
        ("delta_stepping_4", IaAlgorithm::DeltaStepping { delta: 4 }),
        ("bellman_ford", IaAlgorithm::BellmanFord),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &ia, |b, &ia| {
            b.iter(|| {
                run_static(EngineConfig {
                    num_procs: 8,
                    ia,
                    ..Default::default()
                })
            });
        });
    }
    group.finish();
}

criterion_group!(
    ablations,
    ablation_recombination,
    ablation_ia_algorithm,
    ablation_partitioner,
    ablation_exchange_schedule,
    ablation_msg_size,
    ablation_proc_count,
    ablation_repartition_mode
);
criterion_main!(ablations);
