//! Criterion benches, one per evaluation figure (wall-clock of the full
//! experiment at reduced scale). The `figures` binary regenerates the actual
//! paper series (virtual cluster minutes at n=2000, P=16); these benches
//! track the host-side cost of each experiment and catch performance
//! regressions in the engine paths each figure exercises.

use aa_bench::experiments::{run_single_injection, FIG8_STRATEGIES, SWEEP_STRATEGIES};
use aa_bench::workload::{community_vertex_batch, ExperimentParams};
use aa_core::{AdditionStrategy, AnytimeEngine, EngineConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_params() -> ExperimentParams {
    ExperimentParams {
        n: 500,
        procs: 8,
        ba_m: 2,
        seed: 0xBE7C4,
        compute_scale: 1.0,
    }
}

/// Figure 4: anytime-anywhere vs baseline restart, injection at RC4.
fn fig4_restart_vs_aa(c: &mut Criterion) {
    let params = bench_params();
    let mut group = c.benchmark_group("fig4_restart_vs_aa");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(800));
    for strategy in [
        AdditionStrategy::RoundRobinPs,
        AdditionStrategy::BaselineRestart,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy),
            &strategy,
            |b, &strategy| {
                b.iter(|| run_single_injection(&params, 4, 6, 512, strategy));
            },
        );
    }
    group.finish();
}

/// Figure 5: single-step injection at RC0, mid-sweep batch, per strategy.
fn fig5_single_step_rc0(c: &mut Criterion) {
    let params = bench_params();
    let mut group = c.benchmark_group("fig5_single_step_rc0");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(800));
    for strategy in SWEEP_STRATEGIES {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy),
            &strategy,
            |b, &strategy| {
                b.iter(|| run_single_injection(&params, 0, 30, 3000, strategy));
            },
        );
    }
    group.finish();
}

/// Figure 6: the same injection at RC8.
fn fig6_single_step_rc8(c: &mut Criterion) {
    let params = bench_params();
    let mut group = c.benchmark_group("fig6_single_step_rc8");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(800));
    for strategy in SWEEP_STRATEGIES {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy),
            &strategy,
            |b, &strategy| {
                b.iter(|| run_single_injection(&params, 8, 30, 3000, strategy));
            },
        );
    }
    group.finish();
}

/// Figure 7: the cut-edge measurement path (new_cut_edges over the final
/// partition) for each strategy's run.
fn fig7_cut_edges(c: &mut Criterion) {
    let params = bench_params();
    let mut group = c.benchmark_group("fig7_cut_edges");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(800));
    for strategy in SWEEP_STRATEGIES {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    let row = run_single_injection(&params, 0, 30, 3000, strategy);
                    row.new_cut_edges
                });
            },
        );
    }
    group.finish();
}

/// Figure 8: incremental additions over 10 RC steps, per strategy.
fn fig8_incremental(c: &mut Criterion) {
    let params = bench_params();
    let mut group = c.benchmark_group("fig8_incremental");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(800));
    for strategy in FIG8_STRATEGIES {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    let mut e = AnytimeEngine::new(
                        params.base_graph(),
                        EngineConfig {
                            num_procs: params.procs,
                            seed: params.seed,
                            ..Default::default()
                        },
                    );
                    e.initialize();
                    for round in 0..10u64 {
                        let batch = community_vertex_batch(e.graph(), 4, params.seed ^ round);
                        e.add_vertices(&batch, strategy);
                        e.rc_step();
                    }
                    e.run_to_convergence(64);
                    e.makespan_us()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    figures,
    fig4_restart_vs_aa,
    fig5_single_step_rc0,
    fig6_single_step_rc8,
    fig7_cut_edges,
    fig8_incremental
);
criterion_main!(figures);
