//! Anytime top-k experiment (beyond-paper): how much of the closeness
//! computation the bound-based pruning in `aa-query` makes skippable, and
//! how early the top-k answer settles relative to full convergence.
//!
//! For each R-MAT scale the sweep runs the engine to static convergence
//! while a [`TopKTracker`] observes every RC step through the bound-delta
//! feed. Two step counts matter: the step at which the tracker's answer
//! became provably exact (every non-member pruned or dominated, member
//! scores pivot-exact) and the step at which the *engine* finished all
//! rows. Their gap — plus the fraction of non-member candidates the
//! integer bound test discharges before convergence — is the anytime
//! dividend: a server could stop refining that much earlier if top-k is
//! all it needs. The final answer of every row is checked bit-for-bit
//! against the converged snapshot's ranking before the row is reported.

use crate::workload::ExperimentParams;
use aa_core::{AnytimeEngine, EngineConfig};
use aa_graph::rmat::{rmat, RmatParams};
use aa_query::{TopKConfig, TopKTracker};

/// One R-MAT scale of the top-k pruning sweep.
#[derive(Debug, Clone)]
pub struct TopkRow {
    /// R-MAT scale (the graph has `2^scale` vertices).
    pub scale: u32,
    /// Vertices in the generated graph.
    pub vertices: usize,
    /// Edges in the generated graph.
    pub edges: usize,
    /// The k being tracked.
    pub k: usize,
    /// Pivots the structural bound builder actually selected.
    pub pivots: usize,
    /// RC step at which the tracker's answer became exact (`None` only if
    /// it never did within budget — which fails the sweep).
    pub steps_to_exact: Option<u64>,
    /// RC steps the engine needed for full convergence of every row.
    pub steps_to_converge: usize,
    /// Fraction of non-member candidates pruned at the resolution step.
    pub pruned_at_exact: f64,
    /// Highest pruned fraction seen at any pre-convergence observation.
    pub peak_pruned: f64,
    /// Whether the tracker's final members matched the converged
    /// snapshot's ranking exactly (always true for returned rows).
    pub oracle_match: bool,
}

/// Runs one scale: engine to convergence with the tracker observing every
/// RC step, then a bit-for-bit oracle check of the final answer.
fn topk_cell(
    params: &ExperimentParams,
    scale: u32,
    k: usize,
    max_pivots: usize,
) -> Result<TopkRow, String> {
    let n = 1usize << scale;
    let graph = rmat(scale, n * 4, RmatParams::default(), 4, params.seed);
    let vertices = graph.vertex_count();
    let edges = graph.edge_count();
    let config = EngineConfig {
        num_procs: params.procs,
        seed: params.seed,
        compute_scale: params.compute_scale,
        ..Default::default()
    };
    let mut engine = AnytimeEngine::new(graph, config);
    engine.enable_bound_feed();
    engine.initialize();
    let mut tracker = TopKTracker::new(TopKConfig { k, max_pivots });

    let observe = |engine: &mut AnytimeEngine, tracker: &mut TopKTracker| {
        let frame = engine.publish_snapshot();
        let deltas = engine.drain_bound_deltas();
        tracker.observe(&frame, engine.graph(), &deltas);
    };
    observe(&mut engine, &mut tracker);

    let budget = 16 * params.procs + 64;
    let mut peak_pruned: f64 = tracker.pruned_fraction();
    let mut pruned_at_exact: f64 = if tracker.is_exact() {
        tracker.pruned_fraction()
    } else {
        0.0
    };
    let mut steps = 0usize;
    while !engine.is_converged() && steps < budget {
        engine.rc_step();
        steps += 1;
        let was_exact = tracker.is_exact();
        observe(&mut engine, &mut tracker);
        if !engine.is_converged() && tracker.pruned_fraction() > peak_pruned {
            peak_pruned = tracker.pruned_fraction();
        }
        if !was_exact && tracker.is_exact() {
            pruned_at_exact = tracker.pruned_fraction();
        }
    }
    if !engine.is_converged() {
        return Err(format!(
            "scale {scale} did not converge within {budget} steps"
        ));
    }

    // Oracle check: the converged snapshot's ranking is ground truth and
    // the tracker must agree exactly, both in membership and order.
    let ans = tracker
        .answer(k)
        .ok_or_else(|| format!("scale {scale}: tracker never produced an answer"))?;
    if !ans.is_exact() {
        return Err(format!(
            "scale {scale}: converged but tracker confidence is still anytime"
        ));
    }
    let oracle = engine.snapshot().top_k(k);
    let oracle_ids: Vec<_> = oracle.iter().map(|&(v, _)| v).collect();
    if ans.ids() != oracle_ids {
        return Err(format!(
            "scale {scale}: exact-claimed answer {:?} diverges from oracle {:?}",
            ans.ids(),
            oracle_ids
        ));
    }

    let row = TopkRow {
        scale,
        vertices,
        edges,
        k,
        pivots: tracker.pivots().len(),
        steps_to_exact: tracker.resolution_step(),
        steps_to_converge: engine.rc_steps(),
        pruned_at_exact,
        peak_pruned,
        oracle_match: true,
    };
    // Headline claim of the committed artifact, checked at generation time:
    // at k = 10 and 4096+ vertices the integer bound test must discharge at
    // least half of the non-member candidates before full convergence.
    if !cfg!(debug_assertions) && k == 10 && vertices >= 4096 {
        assert!(
            row.peak_pruned >= 0.5,
            "pruning regression at scale {scale}: peak pre-convergence pruned \
             fraction {:.3} < 0.5 (pivots = {})",
            row.peak_pruned,
            row.pivots,
        );
    }
    Ok(row)
}

/// Runs the sweep over `scales` at fixed `k` and pivot budget.
pub fn topk_sweep(
    params: &ExperimentParams,
    scales: &[u32],
    k: usize,
    max_pivots: usize,
) -> Result<Vec<TopkRow>, String> {
    scales
        .iter()
        .map(|&s| topk_cell(params, s, k, max_pivots))
        .collect()
}

/// Serializes the sweep as the committed `BENCH_topk.json` artifact.
pub fn topk_rows_to_json(rows: &[TopkRow]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"scale\": {}, \"vertices\": {}, \"edges\": {}, \"k\": {}, \
             \"pivots\": {}, \"steps_to_exact\": {}, \"steps_to_converge\": {}, \
             \"pruned_at_exact\": {:.4}, \"peak_pruned\": {:.4}, \"oracle_match\": {}}}{}",
            r.scale,
            r.vertices,
            r.edges,
            r.k,
            r.pivots,
            r.steps_to_exact
                .map_or("null".to_string(), |s| s.to_string()),
            r.steps_to_converge,
            r.pruned_at_exact,
            r.peak_pruned,
            r.oracle_match,
            if i + 1 < rows.len() { ",\n" } else { "\n" }
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_oracle_exact_prunes_and_serializes() {
        let params = ExperimentParams {
            procs: 4,
            ..Default::default()
        };
        let rows = topk_sweep(&params, &[7], 5, 24).unwrap();
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.oracle_match);
        assert!(r.steps_to_exact.is_some(), "{r:?}");
        assert!(r.peak_pruned > 0.0, "bounds pruned nothing: {r:?}");
        assert!(r.peak_pruned <= 1.0);
        assert!(r.pivots > 0 && r.pivots <= 24);
        let json = topk_rows_to_json(&rows);
        assert!(json.contains("\"peak_pruned\""), "{json}");
        assert!(json.starts_with('[') && json.ends_with(']'));
    }
}
