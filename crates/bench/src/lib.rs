#![forbid(unsafe_code)]
//! Experiment harness for the papers' evaluation (Figures 4–8) and ablations.
//!
//! The papers evaluate on 16 processors and 50 000-vertex scale-free graphs;
//! dense APSP state is Θ(n²), so the harness scales `n` down (default 2 000)
//! and scales every vertex-addition batch to the *same fraction of |V|* the
//! paper used (see `DESIGN.md` §2). All reported times are the simulated
//! cluster's LogP makespan — the hardware-independent "cluster minutes" that
//! the figures plot — with wall-clock time available alongside.

pub mod backend;
pub mod experiments;
pub mod ingest;
pub mod serve;
pub mod topk;
pub mod workload;

pub use backend::{backend_rows_to_json, backend_sweep, host_parallelism, speedup_at, BackendRow};
pub use experiments::{
    fig4, fig5, fig6, fig7, fig8, Fig4Row, Fig8Row, SingleStepRow, StrategyChoice,
};
pub use ingest::{churn_ops, ingest_throughput, rows_to_json, IngestRow};
pub use serve::{serve_load, serve_rows_to_json, serve_topk_mix, serve_under_faults, ServeRow};
pub use topk::{topk_rows_to_json, topk_sweep, TopkRow};
pub use workload::{community_vertex_batch, scaled, ExperimentParams};
