//! Serving-under-load experiment (beyond-paper): the `aa-serve` resident
//! server driven by a deterministic mixed read/write workload, swept over
//! offered load and read fraction at a fixed engine scale.
//!
//! Each cell drives the same number of turns against a fresh engine on the
//! same R-MAT base graph and records read latency quantiles (virtual LogP
//! microseconds from submission to service), shed/throttle rates, and how
//! many turns the server spent in degraded mode. The interesting regime is
//! offered load past the read token budget: admission control must shed or
//! throttle the excess while every admitted request still resolves —
//! latency saturates instead of growing without bound.

use crate::ingest::ingest_base_graph;
use crate::workload::ExperimentParams;
use aa_core::{AnytimeEngine, EngineConfig, FaultConfig};
use aa_serve::{ClientOp, LoadGen, ServeConfig, Server, WorkloadConfig};

/// One (offered load, read fraction) cell of the serving sweep.
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// Requests offered per serving turn.
    pub offered_per_turn: usize,
    /// Read share of the offered load.
    pub read_fraction: f64,
    /// Top-k share of the reads (the rest are single-vertex lookups).
    pub topk_read_mix: f64,
    /// Per-transfer link drop probability during recombination.
    pub drop_rate: f64,
    /// Serving turns driven.
    pub turns: usize,
    /// Reads submitted / served / throttled / shed.
    pub reads_submitted: u64,
    /// Reads answered from a published snapshot frame.
    pub reads_served: u64,
    /// Reads admitted with a `Throttled{retry_after}` hint.
    pub reads_throttled: u64,
    /// Reads shed (queue capacity + deadline estimate + expiry).
    pub reads_shed: u64,
    /// Writes accepted into the ingest pipeline.
    pub writes_accepted: u64,
    /// Writes shed (ingest queue full or write token budget exhausted).
    pub writes_shed: u64,
    /// Median read latency in virtual microseconds.
    pub p50_us: f64,
    /// 99th-percentile read latency in virtual microseconds.
    pub p99_us: f64,
    /// Shed fraction of resolved reads.
    pub shed_rate: f64,
    /// Top-k reads answered with `Exact` confidence.
    pub topk_exact: u64,
    /// Top-k reads answered with `Anytime` confidence (bounds still open).
    pub topk_anytime: u64,
    /// Turns spent in degraded mode.
    pub degraded_turns: u64,
    /// Cluster-seconds of LogP makespan the run consumed.
    pub cluster_seconds: f64,
}

/// Runs one serving cell: fresh engine, `turns` turns of offered load, then
/// a drain so every admitted request resolves before rates are computed.
fn serve_cell(
    params: &ExperimentParams,
    offered: usize,
    read_fraction: f64,
    topk_read_mix: f64,
    drop_rate: f64,
    turns: usize,
) -> Result<ServeRow, String> {
    let base = ingest_base_graph(params);
    let config = EngineConfig {
        num_procs: params.procs,
        seed: params.seed,
        compute_scale: params.compute_scale,
        fault: (drop_rate > 0.0).then(|| FaultConfig {
            p_drop: drop_rate,
            ..Default::default()
        }),
        ..Default::default()
    };
    let engine = AnytimeEngine::new(base, config);
    let mut server = Server::new(engine, ServeConfig::default())?;
    let mut gen = LoadGen::new(WorkloadConfig {
        seed: params.seed ^ 0x5e47e,
        offered_per_turn: offered,
        read_fraction,
        topk_read_mix,
        top_k: 10,
    });
    let mut topk_exact = 0u64;
    let mut topk_anytime = 0u64;
    let mut count_topk = |outcomes: &[aa_serve::ReadOutcome]| {
        for o in outcomes {
            if let aa_serve::ReadOutcome::Served {
                value: aa_serve::ReadValue::TopK(ans),
                ..
            } = o
            {
                if ans.is_exact() {
                    topk_exact += 1;
                } else {
                    topk_anytime += 1;
                }
            }
        }
    };
    let t0 = server.engine().makespan_us();
    for _ in 0..turns {
        for op in gen.turn_ops(server.engine()) {
            match op {
                ClientOp::Read(kind) => {
                    server.submit_read(kind);
                }
                ClientOp::Write(op) => {
                    server.submit_write(op);
                }
            }
        }
        count_topk(&server.turn()?.served);
    }
    count_topk(&server.drain(16 * params.procs + 256)?);
    let cluster_seconds = (server.engine().makespan_us() - t0) / 1e6;

    let stats = server.stats();
    let (p50_us, p99_us) = server.latency_quantiles().unwrap_or((0.0, 0.0));
    Ok(ServeRow {
        offered_per_turn: offered,
        read_fraction,
        topk_read_mix,
        drop_rate,
        turns,
        reads_submitted: stats.reads_submitted,
        reads_served: stats.reads_served,
        reads_throttled: stats.reads_throttled,
        reads_shed: stats.reads_shed_capacity + stats.reads_shed_deadline,
        writes_accepted: stats.writes_accepted,
        writes_shed: stats.writes_shed_queue + stats.writes_shed_budget,
        p50_us,
        p99_us,
        shed_rate: stats.read_shed_rate(),
        topk_exact,
        topk_anytime,
        degraded_turns: stats.degraded_turns,
        cluster_seconds,
    })
}

/// Runs the full sweep: every `offered_loads` × `read_fractions` cell
/// serves `turns` turns of deterministic mixed traffic, healthy links.
pub fn serve_load(
    params: &ExperimentParams,
    offered_loads: &[usize],
    read_fractions: &[f64],
    turns: usize,
) -> Result<Vec<ServeRow>, String> {
    let mut rows = Vec::new();
    for &offered in offered_loads {
        for &rf in read_fractions {
            rows.push(serve_cell(params, offered, rf, 0.7, 0.0, turns)?);
        }
    }
    Ok(rows)
}

/// Sweeps the top-k share of the read traffic at fixed offered load and an
/// all-read mix: how do latency quantiles and exact/anytime confidence
/// split move as reads shift from single-vertex lookups to full top-k
/// ranking queries under concurrent write churn?
pub fn serve_topk_mix(
    params: &ExperimentParams,
    offered: usize,
    mixes: &[f64],
    turns: usize,
) -> Result<Vec<ServeRow>, String> {
    let mut rows = Vec::new();
    for &mix in mixes {
        rows.push(serve_cell(params, offered, 0.8, mix, 0.0, turns)?);
    }
    Ok(rows)
}

/// One chaos cell at fixed offered load: lossy links at `drop_rate` under
/// the default 80/20 read/write mix.
pub fn serve_under_faults(
    params: &ExperimentParams,
    offered: usize,
    drop_rate: f64,
    turns: usize,
) -> Result<ServeRow, String> {
    serve_cell(params, offered, 0.8, 0.7, drop_rate, turns)
}

/// Serializes the sweep as a JSON array (the committed `BENCH_serve.json`
/// baseline and the CI smoke artifact).
pub fn serve_rows_to_json(rows: &[ServeRow]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"offered_per_turn\": {}, \"read_fraction\": {}, \"topk_read_mix\": {}, \
             \"drop_rate\": {}, \
             \"turns\": {}, \"reads_submitted\": {}, \"reads_served\": {}, \
             \"reads_throttled\": {}, \"reads_shed\": {}, \"writes_accepted\": {}, \
             \"writes_shed\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
             \"shed_rate\": {:.4}, \"topk_exact\": {}, \"topk_anytime\": {}, \
             \"degraded_turns\": {}, \"cluster_seconds\": {:.6}}}{}",
            r.offered_per_turn,
            r.read_fraction,
            r.topk_read_mix,
            r.drop_rate,
            r.turns,
            r.reads_submitted,
            r.reads_served,
            r.reads_throttled,
            r.reads_shed,
            r.writes_accepted,
            r.writes_shed,
            r.p50_us,
            r.p99_us,
            r.shed_rate,
            r.topk_exact,
            r.topk_anytime,
            r.degraded_turns,
            r.cluster_seconds,
            if i + 1 < rows.len() { ",\n" } else { "\n" }
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> ExperimentParams {
        ExperimentParams {
            n: 192,
            procs: 4,
            ..Default::default()
        }
    }

    #[test]
    fn every_cell_resolves_all_reads_and_orders_quantiles() {
        let params = tiny_params();
        let rows = serve_load(&params, &[16, 128], &[0.8], 24).unwrap();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            // Zero hangs: everything submitted is served, throttle-resolved,
            // or explicitly shed.
            assert_eq!(
                r.reads_submitted,
                r.reads_served + r.reads_shed,
                "unresolved reads in {r:?}"
            );
            assert!(r.p50_us <= r.p99_us, "quantiles out of order: {r:?}");
            assert!(r.shed_rate.is_finite() && (0.0..=1.0).contains(&r.shed_rate));
            assert!(r.cluster_seconds > 0.0);
        }
        let json = serve_rows_to_json(&rows);
        assert!(json.contains("\"offered_per_turn\": 128"));
        assert!(json.starts_with('[') && json.ends_with(']'));
    }

    #[test]
    fn overload_sheds_instead_of_growing_latency_without_bound() {
        let params = tiny_params();
        let rows = serve_load(&params, &[16, 256], &[0.9], 24).unwrap();
        let light = &rows[0];
        let heavy = &rows[1];
        assert_eq!(light.reads_shed + light.reads_throttled, 0, "{light:?}");
        // Past the token budget the server must exercise backpressure.
        assert!(
            heavy.reads_shed + heavy.reads_throttled > 0,
            "overload exercised no backpressure: {heavy:?}"
        );
        // Admission control caps the queue, so p99 saturates: it stays
        // within the deadline rather than scaling with total offered load.
        let config = ServeConfig::default();
        assert!(
            heavy.p99_us <= config.default_deadline_us,
            "p99 {} exceeds deadline {}",
            heavy.p99_us,
            config.default_deadline_us
        );
        if !cfg!(debug_assertions) {
            assert!(heavy.shed_rate > 0.0, "expected shedding at 16x load");
        }
    }

    #[test]
    fn topk_mix_sweep_counts_confidence_and_serializes() {
        let params = tiny_params();
        let rows = serve_topk_mix(&params, 16, &[0.0, 1.0], 24).unwrap();
        assert_eq!(rows.len(), 2);
        // All-vertex reads: no top-k outcomes at all.
        assert_eq!(
            rows[0].topk_exact + rows[0].topk_anytime,
            0,
            "{:?}",
            rows[0]
        );
        // All-top-k reads: every served read carries a confidence verdict.
        assert_eq!(
            rows[1].topk_exact + rows[1].topk_anytime,
            rows[1].reads_served,
            "{:?}",
            rows[1]
        );
        assert!(rows[1].reads_served > 0);
        let json = serve_rows_to_json(&rows);
        assert!(json.contains("\"topk_read_mix\": 1"), "{json}");
        assert!(json.contains("\"topk_exact\""), "{json}");
    }

    #[test]
    fn lossy_links_degrade_service_without_hanging() {
        let params = tiny_params();
        let row = serve_under_faults(&params, 32, 0.2, 24).unwrap();
        assert_eq!(row.reads_submitted, row.reads_served + row.reads_shed);
        assert!(row.reads_served > 0);
    }
}
