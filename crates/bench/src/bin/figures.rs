//! Figure-reproduction harness.
//!
//! Regenerates the data series of every figure in the papers' evaluation
//! section. Usage:
//!
//! ```text
//! figures [fig4|fig5|fig6|fig7|fig8|all] [--n N] [--procs P] [--seed S]
//! ```
//!
//! Times are simulated-cluster minutes (LogP makespan); batch sizes are
//! scaled from the papers' 50 000-vertex setup to the chosen `--n` at the
//! same fraction of |V| (the paper-scale size is shown alongside).

use aa_bench::backend::{backend_rows_to_json, backend_sweep, host_parallelism, speedup_at};
use aa_bench::experiments::{self, AnytimeRow, Fig4Row, Fig8Row, ScalingRow, SingleStepRow};
use aa_bench::ingest::{
    durable_overhead, ingest_throughput, overhead_to_json, rows_to_json, IngestRow,
};
use aa_bench::serve::{serve_load, serve_rows_to_json, serve_topk_mix, ServeRow};
use aa_bench::topk::{topk_rows_to_json, topk_sweep, TopkRow};
use aa_bench::workload::ExperimentParams;

fn parse_args() -> (Vec<String>, ExperimentParams, Option<String>) {
    let mut params = ExperimentParams::default();
    let mut figs = Vec::new();
    let mut json_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--n" => params.n = args.next().expect("--n N").parse().expect("invalid N"),
            "--procs" => params.procs = args.next().expect("--procs P").parse().expect("invalid P"),
            "--seed" => params.seed = args.next().expect("--seed S").parse().expect("invalid S"),
            "--compute-scale" => {
                params.compute_scale = args
                    .next()
                    .expect("--compute-scale X")
                    .parse()
                    .expect("invalid scale")
            }
            "--json" => json_out = Some(args.next().expect("--json PATH")),
            "all" => figs.extend(["fig4", "fig5", "fig6", "fig7", "fig8"].map(String::from)),
            f @ ("fig4" | "fig5" | "fig6" | "fig7" | "fig8" | "scaling" | "anytime" | "ingest"
            | "serve" | "backend" | "topk") => figs.push(f.to_string()),
            "replay" => {
                let path = args.next().expect("replay <progress.jsonl>");
                figs.push(format!("replay:{path}"));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: figures [fig4|fig5|fig6|fig7|fig8|scaling|anytime|ingest|serve|backend|topk|replay FILE|all] [--n N] [--procs P] [--seed S] [--compute-scale X] [--json PATH]");
                // CLI entry point: a usage error is the one place an abrupt
                // exit is the right interface.
                #[allow(clippy::exit)]
                std::process::exit(2);
            }
        }
    }
    if figs.is_empty() {
        figs.push("all".into());
        figs = vec![
            "fig4".into(),
            "fig5".into(),
            "fig6".into(),
            "fig7".into(),
            "fig8".into(),
        ];
    }
    figs.dedup();
    (figs, params, json_out)
}

fn print_header(params: &ExperimentParams, title: &str) {
    println!();
    println!("=== {title} ===");
    println!(
        "    n = {} vertices, P = {} processors, seed = {}, compute x{} (paper: n = 50000, P = 16)",
        params.n, params.procs, params.seed, params.compute_scale
    );
}

fn print_fig4(rows: &[Fig4Row]) {
    println!(
        "{:<10} {:>28} {:>18}",
        "inject at", "Anytime Anywhere (RR-PS)", "Baseline Restart"
    );
    for r in rows {
        println!(
            "RC{:<9} {:>24.3} min {:>14.3} min",
            r.inject_step, r.anytime_minutes, r.restart_minutes
        );
    }
}

fn print_single_step(rows: &[SingleStepRow], metric_cut: bool) {
    let strategies = experiments::SWEEP_STRATEGIES;
    print!("{:<22}", "vertices added (paper)");
    for s in strategies {
        print!(" {:>16}", s.to_string());
    }
    println!();
    for chunk in rows.chunks(strategies.len()) {
        print!("{:<10} ({:>6})  ", chunk[0].batch, chunk[0].paper_batch);
        for r in chunk {
            if metric_cut {
                print!(" {:>16}", r.new_cut_edges);
            } else {
                print!(" {:>12.3} min", r.minutes);
            }
        }
        println!();
    }
}

fn print_fig8(rows: &[Fig8Row]) {
    let strategies = experiments::FIG8_STRATEGIES;
    print!("{:<26}", "per-step (paper, cumul.)");
    for s in strategies {
        print!(" {:>17}", s.to_string());
    }
    println!();
    for chunk in rows.chunks(strategies.len()) {
        print!(
            "{:<6} ({:>4}, {:>5})     ",
            chunk[0].per_step, chunk[0].paper_per_step, chunk[0].cumulative
        );
        for r in chunk {
            print!(" {:>13.3} min", r.minutes);
        }
        println!();
    }
}

fn print_anytime(rows: &[AnytimeRow]) {
    println!(
        "{:<8} {:>12} {:>18} {:>14} {:>10} {:>8} {:>10}",
        "RC step", "minutes", "mean |error|", "top-25 overlap", "max over", "tau", "conv rows"
    );
    for r in rows {
        println!(
            "{:<8} {:>12.4} {:>18.3e} {:>13.0}% {:>10.1} {:>8.3} {:>9.0}%",
            r.rc_step,
            r.minutes,
            r.mean_abs_error,
            r.top25_overlap * 100.0,
            r.max_overestimate,
            r.kendall_tau,
            r.converged_rows * 100.0
        );
    }
}

/// `figures replay <progress.jsonl>`: renders a progress file written by
/// `aa analyze --progress-out` (or the nightly chaos workflow) as the same
/// anytime-quality table, without re-running anything.
fn print_replay(path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            #[allow(clippy::exit)]
            std::process::exit(1);
        }
    };
    let samples = match aa_core::decode_jsonl(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot decode {path}: {e}");
            #[allow(clippy::exit)]
            std::process::exit(1);
        }
    };
    println!();
    println!("=== Replay: {path} ({} samples) ===", samples.len());
    println!(
        "{:<8} {:>14} {:>10} {:>10} {:>8} {:>10} {:>10} {:>6} {:>10}",
        "RC step",
        "cluster ms",
        "max over",
        "mean over",
        "tau",
        "conv rows",
        "in flight",
        "down",
        "recovering"
    );
    for s in &samples {
        println!(
            "{:<8} {:>14.1} {:>10.1} {:>10.3} {:>8.3} {:>9.0}% {:>10} {:>6} {:>10}",
            s.rc_step,
            s.makespan_us / 1000.0,
            s.max_overestimate,
            s.mean_overestimate,
            s.kendall_tau,
            s.converged_row_fraction * 100.0,
            s.outstanding_rows,
            s.down_ranks,
            if s.recovering { "yes" } else { "no" }
        );
    }
}

fn print_scaling(rows: &[ScalingRow]) {
    println!(
        "{:<8} {:>14} {:>10} {:>14} {:>10}",
        "procs", "minutes", "RC steps", "bytes moved", "speedup"
    );
    let base = rows[0].minutes;
    for r in rows {
        println!(
            "{:<8} {:>14.4} {:>10} {:>14} {:>9.2}x",
            r.procs,
            r.minutes,
            r.rc_steps,
            r.bytes,
            base / r.minutes
        );
    }
}

fn print_ingest(rows: &[IngestRow]) {
    println!(
        "{:<8} {:>6} {:>9} {:>14} {:>12} {:>10} {:>9} {:>6}",
        "batch", "drop", "updates", "updates/sec", "speedup", "coalesce", "flushes", "shed"
    );
    for r in rows {
        let baseline = rows
            .iter()
            .find(|b| b.batch == 1 && b.drop_rate == r.drop_rate)
            .map_or(r.updates_per_cluster_sec, |b| b.updates_per_cluster_sec);
        println!(
            "{:<8} {:>6.2} {:>9} {:>14.1} {:>11.2}x {:>9.1}% {:>9} {:>6}",
            r.batch,
            r.drop_rate,
            r.updates,
            r.updates_per_cluster_sec,
            r.updates_per_cluster_sec / baseline,
            r.coalesce_ratio * 100.0,
            r.flushes,
            r.shed
        );
    }
}

fn print_serve(rows: &[ServeRow]) {
    println!(
        "{:<9} {:>6} {:>6} {:>9} {:>8} {:>9} {:>7} {:>12} {:>12} {:>9} {:>8} {:>8} {:>9}",
        "offered",
        "reads",
        "topk",
        "served",
        "shed",
        "throttle",
        "w.shed",
        "p50 (us)",
        "p99 (us)",
        "shed%",
        "tk.exct",
        "tk.any",
        "degraded"
    );
    for r in rows {
        println!(
            "{:<9} {:>5.0}% {:>5.0}% {:>9} {:>8} {:>9} {:>7} {:>12.1} {:>12.1} {:>8.2}% {:>8} {:>8} {:>9}",
            r.offered_per_turn,
            r.read_fraction * 100.0,
            r.topk_read_mix * 100.0,
            r.reads_served,
            r.reads_shed,
            r.reads_throttled,
            r.writes_shed,
            r.p50_us,
            r.p99_us,
            r.shed_rate * 100.0,
            r.topk_exact,
            r.topk_anytime,
            r.degraded_turns
        );
    }
}

fn run_serve(params: &ExperimentParams, json_out: Option<&str>) {
    let mut rows = match serve_load(params, &[16, 64, 256], &[0.5, 0.8, 0.95], 32) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("serve experiment failed: {e}");
            #[allow(clippy::exit)]
            std::process::exit(1);
        }
    };
    // Top-k read-mix sweep at moderate load: how the latency quantiles and
    // the exact/anytime confidence split move as reads shift from vertex
    // lookups to ranking queries.
    match serve_topk_mix(params, 64, &[0.0, 0.5, 1.0], 32) {
        Ok(mix_rows) => rows.extend(mix_rows),
        Err(e) => {
            eprintln!("serve top-k mix sweep failed: {e}");
            #[allow(clippy::exit)]
            std::process::exit(1);
        }
    }
    print_serve(&rows);
    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(path, serve_rows_to_json(&rows)) {
            eprintln!("cannot write {path}: {e}");
            #[allow(clippy::exit)]
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
}

fn print_topk(rows: &[TopkRow]) {
    println!(
        "{:<7} {:>9} {:>9} {:>4} {:>7} {:>12} {:>12} {:>12} {:>11} {:>7}",
        "scale",
        "vertices",
        "edges",
        "k",
        "pivots",
        "exact@step",
        "converge@",
        "pruned@exct",
        "peak prune",
        "oracle"
    );
    for r in rows {
        println!(
            "{:<7} {:>9} {:>9} {:>4} {:>7} {:>12} {:>12} {:>11.1}% {:>10.1}% {:>7}",
            r.scale,
            r.vertices,
            r.edges,
            r.k,
            r.pivots,
            r.steps_to_exact
                .map_or("never".to_string(), |s| s.to_string()),
            r.steps_to_converge,
            r.pruned_at_exact * 100.0,
            r.peak_pruned * 100.0,
            if r.oracle_match { "exact" } else { "FAIL" }
        );
    }
}

fn run_topk(params: &ExperimentParams, json_out: Option<&str>) {
    let rows = match topk_sweep(params, &[9, 10, 12], 10, 64) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("top-k sweep failed: {e}");
            #[allow(clippy::exit)]
            std::process::exit(1);
        }
    };
    print_topk(&rows);
    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(path, topk_rows_to_json(&rows)) {
            eprintln!("cannot write {path}: {e}");
            #[allow(clippy::exit)]
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
}

fn run_ingest(params: &ExperimentParams, json_out: Option<&str>) {
    let updates = (params.n / 2).clamp(128, 512);
    let rows = match ingest_throughput(params, &[1, 8, 64, 256], &[0.0, 0.2], updates) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("ingest experiment failed: {e}");
            #[allow(clippy::exit)]
            std::process::exit(1);
        }
    };
    print_ingest(&rows);
    // Durability tax: the same schedule at batch 64 with a real on-disk WAL
    // (group commit per flush + final checkpoint) vs plain. The 2x budget
    // is the durability layer's acceptance bar.
    let tax = match durable_overhead(params, 64, updates) {
        Ok(row) => row,
        Err(e) => {
            eprintln!("durable overhead experiment failed: {e}");
            #[allow(clippy::exit)]
            std::process::exit(1);
        }
    };
    println!(
        "durable WAL @batch=64: plain {:.3}s, durable {:.3}s -> {:.2}x tax \
         ({} commits, {} B on disk)",
        tax.plain_wall_s, tax.durable_wall_s, tax.overhead, tax.commits, tax.disk_bytes
    );
    assert!(
        tax.overhead <= 2.0,
        "durability tax {:.2}x exceeds the 2x budget",
        tax.overhead
    );
    if let Some(path) = json_out {
        let json = format!(
            "{{\n\"sweep\": {},\n\"durable_overhead\": {}\n}}",
            rows_to_json(&rows),
            overhead_to_json(&tax)
        );
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("cannot write {path}: {e}");
            #[allow(clippy::exit)]
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
}

fn run_backend(params: &ExperimentParams, json_out: Option<&str>) {
    let scales = [8u32, 9, 10];
    let rows = match backend_sweep(params, &scales, &[2, 8]) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("backend sweep failed: {e}");
            #[allow(clippy::exit)]
            std::process::exit(1);
        }
    };
    println!(
        "{:<9} {:>8} {:>7} {:>9} {:>9} {:>9} {:>12} {:>14} {:>8}",
        "backend",
        "threads",
        "scale",
        "vertices",
        "edges",
        "RC steps",
        "wall (s)",
        "cluster (min)",
        "speedup"
    );
    for r in &rows {
        let base = rows
            .iter()
            .find(|b| b.scale == r.scale && b.backend == "sim")
            .map_or(r.wall_s, |b| b.wall_s);
        println!(
            "{:<9} {:>8} {:>7} {:>9} {:>9} {:>9} {:>12.4} {:>14.4} {:>7.2}x",
            r.backend,
            r.threads,
            r.scale,
            r.vertices,
            r.edges,
            r.rc_steps,
            r.wall_s,
            r.cluster_minutes,
            base / r.wall_s
        );
    }
    let hp = host_parallelism();
    let speedup = speedup_at(&rows, 8);
    match speedup {
        Some(s) if hp >= 8 => {
            println!("8-thread speedup at largest scale: {s:.2}x ({hp} cores available)");
            // The acceptance bar for the threaded backend: with enough cores
            // it must actually be faster, not merely equivalent. Release
            // builds enforce it; a debug sweep only reports.
            if !cfg!(debug_assertions) {
                assert!(
                    s >= 2.0,
                    "threads backend speedup {s:.2}x at 8 threads is below the 2x bar \
                     on a {hp}-core host"
                );
            }
        }
        Some(s) => println!(
            "8-thread speedup at largest scale: {s:.2}x — host has only {hp} core(s), \
             so the 2x bar is not enforceable here (exactness still is, and held)"
        ),
        None => println!("no 8-thread row at the largest scale; speedup not computed"),
    }
    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(path, backend_rows_to_json(&rows)) {
            eprintln!("cannot write {path}: {e}");
            #[allow(clippy::exit)]
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
}

fn main() {
    let (figs, params, json_out) = parse_args();
    for f in figs {
        match f.as_str() {
            "fig4" => {
                print_header(
                    &params,
                    "Figure 4: anytime-anywhere vs baseline restart (512 paper-scale additions)",
                );
                print_fig4(&experiments::fig4(&params));
            }
            "fig5" => {
                print_header(
                    &params,
                    "Figure 5: vertex additions at RC0 — time per strategy",
                );
                print_single_step(&experiments::fig5(&params), false);
            }
            "fig6" => {
                print_header(
                    &params,
                    "Figure 6: vertex additions at RC8 — time per strategy",
                );
                print_single_step(&experiments::fig6(&params), false);
            }
            "fig7" => {
                print_header(&params, "Figure 7: new cut edges per strategy (RC0 sweep)");
                print_single_step(&experiments::fig7(&params), true);
            }
            "fig8" => {
                print_header(
                    &params,
                    "Figure 8: incremental vertex additions over 10 RC steps",
                );
                print_fig8(&experiments::fig8(&params));
            }
            "anytime" => {
                print_header(
                    &params,
                    "Anytime quality: closeness error per RC step (beyond-paper)",
                );
                print_anytime(&experiments::anytime_quality(&params));
            }
            "scaling" => {
                print_header(
                    &params,
                    "Strong scaling of the static analysis (beyond-paper ablation)",
                );
                print_scaling(&experiments::scaling(&params));
            }
            "ingest" => {
                print_header(
                    &params,
                    "Ingest throughput: coalesced batching vs one-at-a-time (beyond-paper)",
                );
                run_ingest(&params, json_out.as_deref());
            }
            "serve" => {
                print_header(
                    &params,
                    "Serving under load: latency and shed rate vs offered load (beyond-paper)",
                );
                run_serve(&params, json_out.as_deref());
            }
            "backend" => {
                print_header(
                    &params,
                    "Execution backends: sim oracle vs real threads on R-MAT (beyond-paper)",
                );
                run_backend(&params, json_out.as_deref());
            }
            "topk" => {
                print_header(
                    &params,
                    "Anytime top-k: bound-based pruning vs full convergence on R-MAT (beyond-paper)",
                );
                run_topk(&params, json_out.as_deref());
            }
            replay if replay.starts_with("replay:") => {
                print_replay(&replay["replay:".len()..]);
            }
            _ => unreachable!(),
        }
    }
}
