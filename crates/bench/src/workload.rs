//! Workload generation for the experiments.
//!
//! The papers generate undirected scale-free base graphs with Pajek and, for
//! the CutEdge-PS experiments, extract the batches of new vertices "from a
//! larger graph using Pajek's Louvain community extraction method" — i.e. the
//! arriving vertices carry community structure. [`community_vertex_batch`]
//! reproduces that: it generates a community-structured donor graph, detects
//! its communities with our Louvain implementation, and turns whole
//! communities into the batch, attaching them to the existing graph by
//! preferential attachment.

use aa_core::{Endpoint, VertexBatch};
use aa_graph::{community, generators, Graph, VertexId};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Shared experiment parameters. Defaults mirror the papers' setup scaled to
/// laptop-friendly sizes (see `DESIGN.md`).
#[derive(Debug, Clone, Copy)]
pub struct ExperimentParams {
    /// Base graph size (the papers use 50 000).
    pub n: usize,
    /// Virtual processors (the papers use 16).
    pub procs: usize,
    /// Barabási–Albert attachment degree of the base graph.
    pub ba_m: usize,
    /// RNG seed.
    pub seed: u64,
    /// Compute calibration factor (see `EngineConfig::compute_scale`).
    pub compute_scale: f64,
}

impl Default for ExperimentParams {
    fn default() -> Self {
        ExperimentParams {
            n: 2000,
            procs: 16,
            ba_m: 2,
            seed: 0xC10_5EAE55,
            compute_scale: 1.0,
        }
    }
}

impl ExperimentParams {
    /// The base scale-free graph.
    pub fn base_graph(&self) -> Graph {
        generators::barabasi_albert(self.n, self.ba_m, 1, self.seed)
    }
}

/// Scales a batch size quoted for the papers' 50 000-vertex graphs to a graph
/// of `n` vertices, preserving the fraction of |V| (minimum 1).
pub fn scaled(paper_count: usize, n: usize) -> usize {
    ((paper_count as f64) * (n as f64) / 50_000.0)
        .round()
        .max(1.0) as usize
}

/// Builds a community-structured batch of `count` new vertices attached to
/// `existing`:
///
/// 1. generate a planted-partition donor graph a bit larger than the batch;
/// 2. run Louvain on it and accept whole communities until `count` vertices
///    are selected (mirroring the papers' Pajek/Louvain extraction);
/// 3. keep the donor edges among selected vertices as intra-batch edges;
/// 4. attach each selected vertex to the existing graph by preferential
///    attachment (on average ~1 anchor edge per new vertex).
pub fn community_vertex_batch(existing: &Graph, count: usize, seed: u64) -> VertexBatch {
    assert!(count >= 1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // Donor graph: communities of ~12 vertices, dense inside, sparse across.
    let community_size = 12.min(count.max(2));
    let communities = (count * 3 / 2).div_ceil(community_size).max(1);
    let donor = generators::planted_partition(
        communities,
        community_size,
        0.5,
        4.0 / (communities.max(2) * community_size) as f64,
        1,
        seed ^ 0xD0_40,
    );
    let detected = community::louvain(&donor);

    // Accept whole communities (largest first) until `count` is reached.
    let mut members = detected.members();
    members.sort_by_key(|m| std::cmp::Reverse(m.len()));
    let mut selected: Vec<VertexId> = Vec::with_capacity(count);
    for m in members {
        if selected.len() >= count {
            break;
        }
        selected.extend(m.into_iter().take(count - selected.len()));
    }
    // Pad with arbitrary donor vertices if the donor was too small.
    let mut next = 0u32;
    while selected.len() < count {
        if !selected.contains(&next) && donor.is_alive(next) {
            selected.push(next);
        }
        next += 1;
    }
    let index_of: std::collections::HashMap<VertexId, usize> =
        selected.iter().enumerate().map(|(i, &v)| (v, i)).collect();

    let mut batch = VertexBatch::new(count);
    for (u, v, w) in donor.edges() {
        if let (Some(&i), Some(&j)) = (index_of.get(&u), index_of.get(&v)) {
            batch.connect(i.max(j), Endpoint::New(i.min(j)), w);
        }
    }

    // Preferential attachment anchors into the existing graph.
    let anchors: Vec<VertexId> = {
        let mut pool = Vec::new();
        for v in existing.vertices() {
            for _ in 0..existing.degree(v).max(1) {
                pool.push(v);
            }
        }
        pool
    };
    for i in 0..count {
        let anchor = anchors[rng.gen_range(0..anchors.len())];
        batch.connect(i, Endpoint::Existing(anchor), 1);
    }
    batch
        .validate(existing.capacity())
        .expect("generated batch must be valid");
    batch
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_preserves_fraction() {
        assert_eq!(scaled(500, 50_000), 500);
        assert_eq!(scaled(500, 5_000), 50);
        assert_eq!(scaled(512, 2_000), 20);
        assert_eq!(scaled(1, 100), 1, "never scales to zero");
    }

    #[test]
    fn batch_has_structure_and_anchors() {
        let existing = generators::barabasi_albert(200, 2, 1, 1);
        let b = community_vertex_batch(&existing, 30, 7);
        assert_eq!(b.count, 30);
        let intra = b
            .edges
            .iter()
            .filter(|(_, e, _)| matches!(e, Endpoint::New(_)))
            .count();
        let anchors = b
            .edges
            .iter()
            .filter(|(_, e, _)| matches!(e, Endpoint::Existing(_)))
            .count();
        assert!(
            intra > 30,
            "community batches are internally dense: {intra}"
        );
        assert_eq!(anchors, 30, "one anchor per new vertex");
    }

    #[test]
    fn batch_generation_is_deterministic() {
        let existing = generators::barabasi_albert(100, 2, 1, 2);
        let a = community_vertex_batch(&existing, 15, 3);
        let b = community_vertex_batch(&existing, 15, 3);
        assert_eq!(a.edges, b.edges);
    }

    #[test]
    fn tiny_batches_work() {
        let existing = generators::path(10);
        let b = community_vertex_batch(&existing, 1, 5);
        assert_eq!(b.count, 1);
        assert!(b.validate(existing.capacity()).is_ok());
    }
}
