//! Backend sweep (beyond-paper): the deterministic simulator vs the real
//! threaded backend on the same R-MAT workloads.
//!
//! Both backends execute the identical DD/IA/RC message schedule and charge
//! the identical LogP virtual clocks, so every run is checked for exact
//! closeness agreement against the sim oracle before its timing is reported
//! — a row in this sweep is only comparable because it is provably the same
//! computation. Wall-clock time is what differs: the threaded backend fans
//! per-rank compute out to OS threads, so on a multi-core host it should
//! finish the same cluster-minutes of work in less real time.
//!
//! The committed artifact (`BENCH_backend.json`) records the host's
//! available parallelism next to the timings: a single-core container can
//! prove exactness but physically cannot show speedup, and the JSON says so
//! instead of pretending.

use crate::workload::ExperimentParams;
use aa_core::{AnytimeEngine, EngineConfig};
use aa_graph::rmat::{rmat, RmatParams};
use aa_runtime::BackendKind;
use std::time::Instant;

/// One (scale, backend, threads) cell of the sweep.
#[derive(Debug, Clone)]
pub struct BackendRow {
    /// Backend name (`sim` or `threads`).
    pub backend: String,
    /// Worker-thread cap (1 for the sim, which is strictly sequential).
    pub threads: usize,
    /// R-MAT scale (the graph has `2^scale` vertices).
    pub scale: u32,
    /// Vertices in the generated graph.
    pub vertices: usize,
    /// Edges in the generated graph.
    pub edges: usize,
    /// RC steps to static convergence.
    pub rc_steps: usize,
    /// Wall-clock seconds for IA + convergence (host-dependent).
    pub wall_s: f64,
    /// LogP makespan in cluster-minutes (backend-independent by contract).
    pub cluster_minutes: f64,
    /// Whether the closeness vector matched the sim oracle exactly
    /// (always true for returned rows — a mismatch aborts the sweep).
    pub exact: bool,
}

/// The number of logical cores the OS will actually schedule for us.
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn run_once(
    params: &ExperimentParams,
    scale: u32,
    backend: BackendKind,
    threads: usize,
) -> Result<(BackendRow, Vec<f64>), String> {
    let n = 1usize << scale;
    let graph = rmat(scale, n * 4, RmatParams::default(), 4, params.seed);
    let vertices = graph.vertex_count();
    let edges = graph.edge_count();
    let config = EngineConfig {
        num_procs: params.procs,
        seed: params.seed,
        compute_scale: params.compute_scale,
        backend,
        threads,
        ..Default::default()
    };
    let mut engine = AnytimeEngine::new(graph, config);
    // Time the phases the backend parallelizes (IA + RC); domain
    // decomposition is identical sequential work on both and would only
    // dilute the comparison.
    let wall = Instant::now();
    engine.initialize();
    engine.run_to_convergence(16 * params.procs + 64);
    let wall_s = wall.elapsed().as_secs_f64();
    let snap = engine.snapshot();
    let row = BackendRow {
        backend: backend.to_string(),
        threads: if backend == BackendKind::Sim {
            1
        } else {
            threads
        },
        scale,
        vertices,
        edges,
        rc_steps: engine.rc_steps(),
        wall_s,
        cluster_minutes: snap.makespan_us / 60e6,
        exact: true,
    };
    Ok((row, snap.closeness))
}

/// Runs the sweep: for every scale, one sim run (the oracle) followed by one
/// threaded run per entry in `thread_counts`, each checked for exact
/// closeness agreement with the oracle before being reported.
pub fn backend_sweep(
    params: &ExperimentParams,
    scales: &[u32],
    thread_counts: &[usize],
) -> Result<Vec<BackendRow>, String> {
    let mut rows = Vec::new();
    for &scale in scales {
        let (sim_row, oracle) = run_once(params, scale, BackendKind::Sim, 0)?;
        rows.push(sim_row);
        for &threads in thread_counts {
            let (row, closeness) = run_once(params, scale, BackendKind::Threads, threads)?;
            if closeness != oracle {
                let diverged = closeness
                    .iter()
                    .zip(oracle.iter())
                    .filter(|(a, b)| a != b)
                    .count();
                return Err(format!(
                    "threads backend ({threads} workers) diverged from the sim oracle at \
                     scale {scale}: {diverged} of {} closeness values differ",
                    oracle.len()
                ));
            }
            rows.push(row);
        }
    }
    Ok(rows)
}

/// Wall-clock speedup of the threaded backend at `threads` workers over the
/// sim at the largest swept scale, if both rows exist.
pub fn speedup_at(rows: &[BackendRow], threads: usize) -> Option<f64> {
    let largest = rows.iter().map(|r| r.scale).max()?;
    let sim = rows
        .iter()
        .find(|r| r.scale == largest && r.backend == "sim")?;
    let thr = rows
        .iter()
        .find(|r| r.scale == largest && r.backend == "threads" && r.threads == threads)?;
    Some(sim.wall_s / thr.wall_s)
}

/// Serializes the sweep as the `BENCH_backend.json` artifact: host context
/// first (so a reader knows whether speedup was even possible), then rows.
pub fn backend_rows_to_json(rows: &[BackendRow]) -> String {
    let mut out = format!(
        "{{\n\"host_parallelism\": {},\n\"speedup_8_threads_largest\": {},\n\"rows\": [\n",
        host_parallelism(),
        speedup_at(rows, 8).map_or("null".to_string(), |s| format!("{s:.3}")),
    );
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"backend\": \"{}\", \"threads\": {}, \"scale\": {}, \"vertices\": {}, \
             \"edges\": {}, \"rc_steps\": {}, \"wall_s\": {:.6}, \"cluster_minutes\": {:.6}, \
             \"exact\": {}}}{}",
            r.backend,
            r.threads,
            r.scale,
            r.vertices,
            r.edges,
            r.rc_steps,
            r.wall_s,
            r.cluster_minutes,
            r.exact,
            if i + 1 < rows.len() { ",\n" } else { "\n" }
        ));
    }
    out.push_str("]\n}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_oracle_exact_and_serializes() {
        let params = ExperimentParams {
            n: 64,
            procs: 4,
            ..Default::default()
        };
        let rows = backend_sweep(&params, &[6], &[2]).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].backend, "sim");
        assert_eq!(rows[1].backend, "threads");
        assert!(rows.iter().all(|r| r.exact));
        // The LogP message accounting is backend-independent by contract;
        // only measured compute (and thus wall time) may differ.
        assert_eq!(rows[0].rc_steps, rows[1].rc_steps);
        let json = backend_rows_to_json(&rows);
        assert!(json.contains("\"host_parallelism\""), "{json}");
        assert!(json.contains("\"backend\": \"threads\""), "{json}");
    }
}
