//! Runners for the papers' evaluation figures.
//!
//! Every public function regenerates one figure's data series. Times are the
//! simulated cluster's LogP makespan converted to minutes ("cluster
//! minutes"), the analogue of the wall-clock minutes the papers plot for
//! their 16-process MPI runs.

use crate::workload::{community_vertex_batch, scaled, ExperimentParams};
use aa_core::{AdditionStrategy, AnytimeEngine, EngineConfig};
use aa_partition::quality;
use std::time::Instant;

/// Strategy under test (alias kept for harness readability).
pub type StrategyChoice = AdditionStrategy;

/// Converts a virtual-time makespan in µs to "cluster minutes".
fn minutes(us: f64) -> f64 {
    us / 60e6
}

fn engine_for(params: &ExperimentParams) -> AnytimeEngine {
    let config = EngineConfig {
        num_procs: params.procs,
        seed: params.seed,
        compute_scale: params.compute_scale,
        ..Default::default()
    };
    let mut e = AnytimeEngine::new(params.base_graph(), config);
    e.initialize();
    e
}

fn convergence_limit(params: &ExperimentParams) -> usize {
    4 * params.procs + 32
}

/// One data point of Figures 5–7: a single batch injected at one RC step.
#[derive(Debug, Clone)]
pub struct SingleStepRow {
    /// Batch size in *this* run (already scaled).
    pub batch: usize,
    /// The paper-scale batch size this corresponds to.
    pub paper_batch: usize,
    /// Strategy used.
    pub strategy: StrategyChoice,
    /// Total cluster minutes (initialization + pre-steps + incorporation +
    /// reconvergence).
    pub minutes: f64,
    /// New cut edges introduced by the batch under the final partition.
    pub new_cut_edges: usize,
    /// Wall-clock seconds on the host (informational).
    pub wall_secs: f64,
}

/// Runs one injection experiment: `count` community-structured vertices added
/// at recombination step `inject_step` with `strategy`, then reconverged.
pub fn run_single_injection(
    params: &ExperimentParams,
    inject_step: usize,
    count: usize,
    paper_batch: usize,
    strategy: StrategyChoice,
) -> SingleStepRow {
    let wall = Instant::now();
    let mut e = engine_for(params);
    for _ in 0..inject_step {
        e.rc_step();
    }
    let batch = community_vertex_batch(e.graph(), count, params.seed ^ 0xBA7C4);
    let ids = e.add_vertices(&batch, strategy);
    e.run_to_convergence(convergence_limit(params));
    assert!(e.is_converged(), "experiment failed to converge");
    SingleStepRow {
        batch: count,
        paper_batch,
        strategy,
        minutes: minutes(e.makespan_us()),
        new_cut_edges: quality::new_cut_edges(e.graph(), e.partition(), &ids),
        wall_secs: wall.elapsed().as_secs_f64(),
    }
}

/// One data point of Figure 4.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// RC step at which the 512-vertex (paper-scale) batch is injected.
    pub inject_step: usize,
    /// Cluster minutes for the anytime-anywhere approach (RoundRobin-PS).
    pub anytime_minutes: f64,
    /// Cluster minutes for the baseline restart.
    pub restart_minutes: f64,
}

/// Figure 4: anytime-anywhere (RoundRobin-PS) vs baseline restart for a
/// 512-vertex (paper-scale) addition injected at RC0 / RC4 / RC8.
pub fn fig4(params: &ExperimentParams) -> Vec<Fig4Row> {
    let count = scaled(512, params.n);
    [0usize, 4, 8]
        .iter()
        .map(|&step| {
            let aa = run_single_injection(params, step, count, 512, AdditionStrategy::RoundRobinPs);
            let rs =
                run_single_injection(params, step, count, 512, AdditionStrategy::BaselineRestart);
            Fig4Row {
                inject_step: step,
                anytime_minutes: aa.minutes,
                restart_minutes: rs.minutes,
            }
        })
        .collect()
}

/// The paper's Figure 5/6/7 batch-size sweep (paper-scale sizes).
pub const SWEEP_PAPER_SIZES: [usize; 6] = [500, 1000, 2000, 3000, 4500, 6000];

/// The three strategies compared in Figures 5–7.
pub const SWEEP_STRATEGIES: [AdditionStrategy; 3] = [
    AdditionStrategy::RepartitionS,
    AdditionStrategy::CutEdgePs,
    AdditionStrategy::RoundRobinPs,
];

fn single_step_sweep(params: &ExperimentParams, inject_step: usize) -> Vec<SingleStepRow> {
    let mut rows = Vec::new();
    for &paper in &SWEEP_PAPER_SIZES {
        let count = scaled(paper, params.n);
        for &strategy in &SWEEP_STRATEGIES {
            rows.push(run_single_injection(
                params,
                inject_step,
                count,
                paper,
                strategy,
            ));
        }
    }
    rows
}

/// Figure 5: vertex additions at RC0 — time vs batch size for Repartition-S /
/// CutEdge-PS / RoundRobin-PS.
pub fn fig5(params: &ExperimentParams) -> Vec<SingleStepRow> {
    single_step_sweep(params, 0)
}

/// Figure 6: the same sweep injected at RC8.
pub fn fig6(params: &ExperimentParams) -> Vec<SingleStepRow> {
    single_step_sweep(params, 8)
}

/// Figure 7: number of new cut edges per strategy over the same sweep
/// (reuses the Figure 5 runs — the paper's Figure 7 reports the partitions
/// produced by that experiment).
pub fn fig7(params: &ExperimentParams) -> Vec<SingleStepRow> {
    fig5(params)
}

/// One data point of Figure 8.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Vertices added at each of the 10 RC steps (this run's scale).
    pub per_step: usize,
    /// Paper-scale per-step count.
    pub paper_per_step: usize,
    /// Cumulative vertices added.
    pub cumulative: usize,
    /// Strategy used.
    pub strategy: StrategyChoice,
    /// Total cluster minutes.
    pub minutes: f64,
    /// Wall-clock seconds on the host (informational).
    pub wall_secs: f64,
}

/// The paper's Figure 8 per-step counts (cumulative 512 / 1873 / 3830 / 5611).
pub const FIG8_PAPER_PER_STEP: [usize; 4] = [51, 187, 383, 561];

/// The four methods compared in Figure 8.
pub const FIG8_STRATEGIES: [AdditionStrategy; 4] = [
    AdditionStrategy::BaselineRestart,
    AdditionStrategy::RepartitionS,
    AdditionStrategy::RoundRobinPs,
    AdditionStrategy::CutEdgePs,
];

/// Figure 8: incremental vertex additions — a batch arrives at each of 10
/// successive RC steps, for all four methods.
pub fn fig8(params: &ExperimentParams) -> Vec<Fig8Row> {
    let mut rows = Vec::new();
    for &paper_per_step in &FIG8_PAPER_PER_STEP {
        let per_step = scaled(paper_per_step, params.n);
        for &strategy in &FIG8_STRATEGIES {
            let wall = Instant::now();
            let mut e = engine_for(params);
            for round in 0..10 {
                let batch = community_vertex_batch(
                    e.graph(),
                    per_step,
                    params.seed ^ (0xF188 + round as u64),
                );
                e.add_vertices(&batch, strategy);
                e.rc_step();
            }
            e.run_to_convergence(convergence_limit(params));
            assert!(e.is_converged(), "fig8 run failed to converge");
            rows.push(Fig8Row {
                per_step,
                paper_per_step,
                cumulative: 10 * per_step,
                strategy,
                minutes: minutes(e.makespan_us()),
                wall_secs: wall.elapsed().as_secs_f64(),
            });
        }
    }
    rows
}

/// One data point of the (beyond-paper) strong-scaling experiment.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Processor count.
    pub procs: usize,
    /// Cluster minutes to full static convergence.
    pub minutes: f64,
    /// RC steps to convergence.
    pub rc_steps: usize,
    /// Total bytes moved.
    pub bytes: u64,
}

/// Strong scaling of the static analysis: P in {1, 2, 4, 8, 16, 32} on a
/// fixed graph. Not a paper figure — an ablation DESIGN.md calls for.
pub fn scaling(params: &ExperimentParams) -> Vec<ScalingRow> {
    [1usize, 2, 4, 8, 16, 32]
        .iter()
        .map(|&procs| {
            let run_params = ExperimentParams { procs, ..*params };
            let mut e = engine_for(&run_params);
            let rc_steps = e.run_to_convergence(convergence_limit(&run_params));
            assert!(e.is_converged());
            ScalingRow {
                procs,
                minutes: minutes(e.makespan_us()),
                rc_steps,
                bytes: e.cluster().ledger().totals().bytes,
            }
        })
        .collect()
}

/// One data point of the anytime-quality experiment.
#[derive(Debug, Clone)]
pub struct AnytimeRow {
    /// Recombination step the snapshot was taken after.
    pub rc_step: usize,
    /// Cluster minutes elapsed.
    pub minutes: f64,
    /// Mean absolute closeness error vs the exact oracle.
    pub mean_abs_error: f64,
    /// Spearman-style agreement: fraction of the true top-25 already ranked
    /// in the estimate's top-25.
    pub top25_overlap: f64,
    /// Probe: worst distance overestimate (hops) across all finite pairs.
    pub max_overestimate: f64,
    /// Probe: Kendall tau-b of estimated vs exact closeness (1.0 = perfect).
    pub kendall_tau: f64,
    /// Probe: fraction of distance rows already entrywise exact.
    pub converged_rows: f64,
}

/// Quantifies the anytime property: closeness error and top-k agreement after
/// every recombination step of the static analysis. Not a paper figure — the
/// papers assert monotone improvement; this measures it.
pub fn anytime_quality(params: &ExperimentParams) -> Vec<AnytimeRow> {
    let graph = params.base_graph();
    let exact = aa_graph::algo::exact_closeness(&graph);
    let mut true_top: Vec<usize> = (0..exact.len()).collect();
    true_top.sort_by(|&a, &b| exact[b].total_cmp(&exact[a]));
    let true_top: std::collections::HashSet<u32> =
        true_top.into_iter().take(25).map(|v| v as u32).collect();

    let mut e = AnytimeEngine::new(
        graph,
        EngineConfig {
            num_procs: params.procs,
            seed: params.seed,
            compute_scale: params.compute_scale,
            ..Default::default()
        },
    );
    e.initialize();
    e.enable_progress_probe();
    e.record_progress_sample(); // baseline sample before the first RC step
    let mut rows = Vec::new();
    let snapshot_row = |e: &mut AnytimeEngine| {
        let snap = e.snapshot();
        let overlap = snap
            .top_k(25)
            .iter()
            .filter(|&&(v, _)| true_top.contains(&v))
            .count() as f64
            / 25.0;
        let probe = e.progress_samples().last().cloned();
        AnytimeRow {
            rc_step: snap.rc_step,
            minutes: minutes(snap.makespan_us),
            mean_abs_error: snap.mean_abs_error(&exact),
            top25_overlap: overlap,
            max_overestimate: probe.as_ref().map_or(f64::INFINITY, |p| p.max_overestimate),
            kendall_tau: probe.as_ref().map_or(0.0, |p| p.kendall_tau),
            converged_rows: probe.as_ref().map_or(0.0, |p| p.converged_row_fraction),
        }
    };
    rows.push(snapshot_row(&mut e));
    for _ in 0..convergence_limit(params) {
        let done = e.rc_step();
        rows.push(snapshot_row(&mut e));
        if done {
            break;
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny parameters so the experiment plumbing is exercised quickly.
    fn tiny() -> ExperimentParams {
        ExperimentParams {
            n: 150,
            procs: 4,
            ba_m: 2,
            seed: 42,
            compute_scale: 1.0,
        }
    }

    #[test]
    fn single_injection_produces_sane_row() {
        let row = run_single_injection(&tiny(), 0, 10, 500, AdditionStrategy::RoundRobinPs);
        assert_eq!(row.batch, 10);
        assert!(row.minutes > 0.0);
        assert!(row.wall_secs > 0.0);
    }

    #[test]
    fn fig4_shape_anytime_beats_restart() {
        // The paper's shape: the later the injection, the more work the
        // restart wastes; the anytime-anywhere approach stays cheap. At RC0
        // both still face the full first exchange, so we only require rough
        // parity there.
        let params = ExperimentParams {
            n: 600,
            procs: 8,
            ba_m: 2,
            seed: 42,
            compute_scale: 1.0,
        };
        let rows = fig4(&params);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            if r.inject_step == 0 {
                // Only meaningful with release-mode measured compute: debug
                // builds inflate compute 10-50x and distort the ratio.
                if !cfg!(debug_assertions) {
                    // Latency constants dominate at this reduced test scale;
                    // at the experiment scale (n=2000, P=16) the measured
                    // ratio is ~1.1x (see EXPERIMENTS.md).
                    assert!(
                        r.anytime_minutes < 2.0 * r.restart_minutes,
                        "at RC0 anytime ({:.4}) must be within 2x of restart ({:.4})",
                        r.anytime_minutes,
                        r.restart_minutes
                    );
                }
            } else {
                assert!(
                    r.anytime_minutes < r.restart_minutes,
                    "at RC{} anytime ({:.4}) must beat restart ({:.4})",
                    r.inject_step,
                    r.anytime_minutes,
                    r.restart_minutes
                );
            }
        }
    }

    #[test]
    fn anytime_error_decays_to_zero_monotonically() {
        let rows = anytime_quality(&tiny());
        assert!(rows.len() >= 2);
        for pair in rows.windows(2) {
            assert!(
                pair[1].mean_abs_error <= pair[0].mean_abs_error + 1e-15,
                "error must not increase: {} -> {}",
                pair[0].mean_abs_error,
                pair[1].mean_abs_error
            );
        }
        assert!(rows.last().unwrap().mean_abs_error < 1e-15);
        assert!((rows.last().unwrap().top25_overlap - 1.0).abs() < 1e-12);
        // Probe-derived columns agree with the convergence claim.
        let last = rows.last().unwrap();
        assert!(last.max_overestimate < 1e-12, "{}", last.max_overestimate);
        assert!(
            (last.kendall_tau - 1.0).abs() < 1e-12,
            "{}",
            last.kendall_tau
        );
        assert!((last.converged_rows - 1.0).abs() < 1e-12);
        for pair in rows.windows(2) {
            assert!(
                pair[1].converged_rows + 1e-12 >= pair[0].converged_rows,
                "converged-row fraction must not decrease fault-free"
            );
        }
    }

    #[test]
    fn fig8_restart_is_worst() {
        let params = ExperimentParams {
            n: 120,
            procs: 4,
            ba_m: 2,
            seed: 9,
            compute_scale: 1.0,
        };
        // Only the smallest rate, to keep the test fast.
        let per_step = scaled(FIG8_PAPER_PER_STEP[0], params.n).max(1);
        let mut worst_restart = 0.0f64;
        let mut best_other = f64::INFINITY;
        for &strategy in &FIG8_STRATEGIES {
            let mut e = engine_for(&params);
            for round in 0..10 {
                let batch =
                    community_vertex_batch(e.graph(), per_step, params.seed ^ (100 + round));
                e.add_vertices(&batch, strategy);
                e.rc_step();
            }
            e.run_to_convergence(64);
            let m = minutes(e.makespan_us());
            if strategy == AdditionStrategy::BaselineRestart {
                worst_restart = m;
            } else {
                best_other = best_other.min(m);
            }
        }
        assert!(
            worst_restart > best_other,
            "restart ({worst_restart:.4}) must be slower than the best incremental method ({best_other:.4})"
        );
    }
}
