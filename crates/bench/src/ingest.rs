//! Ingest throughput experiment (beyond-paper): sustained updates per
//! cluster-second through the `aa-ingest` coalescing pipeline, swept over
//! batch size and lossy-link drop rate, against the one-at-a-time baseline
//! (batch size 1: every update flushes and reconverges individually).
//!
//! The workload is an R-MAT graph — the papers' dynamic experiments use
//! scale-free graphs, and R-MAT's skewed degree distribution makes the
//! coalescing buffer's duplicate/cancel handling do real work — churned by a
//! deterministic absolute-id schedule of edge adds, deletes, reweights and
//! vertex arrivals. Both runs consume the identical schedule, so rates are
//! directly comparable.

use crate::workload::ExperimentParams;
use aa_core::{AnytimeEngine, EngineConfig, FaultConfig};
use aa_graph::rmat::{rmat, RmatParams};
use aa_graph::{Graph, VertexId, Weight};
use aa_ingest::{DrainPolicy, IngestConfig, IngestPipeline, UpdateOp};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// One (batch size, drop rate) cell of the throughput sweep.
#[derive(Debug, Clone)]
pub struct IngestRow {
    /// Drain batch size (1 = the one-at-a-time baseline).
    pub batch: usize,
    /// Per-transfer link drop probability during recombination.
    pub drop_rate: f64,
    /// Updates pushed through the pipeline.
    pub updates: usize,
    /// Cluster-seconds of LogP makespan consumed serving the stream
    /// (including the final reconvergence).
    pub cluster_seconds: f64,
    /// Sustained throughput: `updates / cluster_seconds`.
    pub updates_per_cluster_sec: f64,
    /// Fraction of raw ops the coalescer absorbed before the engine.
    pub coalesce_ratio: f64,
    /// Flushes performed (baseline: one per update).
    pub flushes: u64,
    /// Updates shed by admission control (0 unless the queue overflows).
    pub shed: u64,
}

/// The R-MAT base graph for the ingest experiments: `~4·n` edges at the
/// smallest power-of-two scale that fits `n` vertices.
pub fn ingest_base_graph(params: &ExperimentParams) -> Graph {
    let scale = (params.n.max(2) as f64).log2().ceil() as u32;
    rmat(scale, params.n * 4, RmatParams::default(), 4, params.seed)
}

/// Generates a deterministic churn schedule of `updates` ops valid against
/// `base` when applied in order (absolute vertex ids; a shadow copy tracks
/// the evolving state).
///
/// The schedule models a skewed update feed: ~75% of edge ops land on a
/// small pool of hub–hub "hot pairs" (R-MAT hubs sit on most shortest
/// paths, so these are exactly the edges whose flapping is most expensive
/// to serve one at a time and most profitable to coalesce), ~15% hit
/// uniformly random pairs, and ~10% are vertex arrivals with 1–3 anchors.
/// Each edge op is chosen from the current shadow state: absent pair → add,
/// present pair → delete or reweight, so hot pairs flap add/delete/reweight.
pub fn churn_ops(base: &Graph, updates: usize, seed: u64) -> Vec<UpdateOp> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x1065e57);
    let mut shadow = base.clone();

    // Hot pool: 8 distinct pairs drawn from the 16 highest-degree vertices.
    let mut by_degree: Vec<(usize, VertexId)> =
        base.vertices().map(|v| (base.degree(v), v)).collect();
    by_degree.sort_unstable_by(|a, b| b.cmp(a));
    let hubs: Vec<VertexId> = by_degree.iter().take(16).map(|&(_, v)| v).collect();
    let mut hot: Vec<(VertexId, VertexId)> = Vec::new();
    while hot.len() < 8 && hubs.len() >= 2 {
        let u = hubs[rng.gen_range(0..hubs.len())];
        let v = hubs[rng.gen_range(0..hubs.len())];
        if u != v && !hot.contains(&(u, v)) && !hot.contains(&(v, u)) {
            hot.push((u, v));
        }
    }

    let mut ops = Vec::with_capacity(updates);
    while ops.len() < updates {
        let alive: Vec<VertexId> = shadow.vertices().collect();
        let roll = rng.gen_range(0..100u32);
        let op = if roll < 10 || hot.is_empty() {
            let count = rng.gen_range(1..=3usize).min(alive.len());
            let mut anchors: Vec<(VertexId, Weight)> = Vec::with_capacity(count);
            for _ in 0..count {
                let a = alive[rng.gen_range(0..alive.len())];
                if !anchors.iter().any(|&(x, _)| x == a) {
                    anchors.push((a, 1));
                }
            }
            let id = shadow.add_vertex();
            for &(a, w) in &anchors {
                shadow.add_edge(id, a, w);
            }
            UpdateOp::AddVertex { anchors }
        } else {
            let (u, v) = if roll < 85 {
                hot[rng.gen_range(0..hot.len())]
            } else {
                let u = alive[rng.gen_range(0..alive.len())];
                let v = alive[rng.gen_range(0..alive.len())];
                if u == v {
                    continue;
                }
                (u, v)
            };
            match shadow.edge_weight(u, v) {
                None => {
                    let w: Weight = rng.gen_range(1..=4);
                    shadow.add_edge(u, v, w);
                    UpdateOp::AddEdge(u, v, w)
                }
                Some(_) if rng.gen_range(0..2u32) == 0 => {
                    shadow.remove_edge(u, v);
                    UpdateOp::DeleteEdge(u, v)
                }
                Some(w0) => {
                    // Pick a weight that actually changes the edge.
                    let mut w: Weight = rng.gen_range(1..=4);
                    if w == w0 {
                        w = w0 % 4 + 1;
                    }
                    shadow.set_edge_weight(u, v, w);
                    UpdateOp::Reweight(u, v, w)
                }
            }
        };
        ops.push(op);
    }
    ops
}

fn serve(
    base: &Graph,
    params: &ExperimentParams,
    ops: &[UpdateOp],
    batch: usize,
    drop_rate: f64,
) -> Result<IngestRow, String> {
    let config = EngineConfig {
        num_procs: params.procs,
        seed: params.seed,
        compute_scale: params.compute_scale,
        fault: (drop_rate > 0.0).then(|| FaultConfig {
            p_drop: drop_rate,
            ..Default::default()
        }),
        ..Default::default()
    };
    let mut engine = AnytimeEngine::new(base.clone(), config);
    engine.initialize();
    let limit = 4 * params.procs + 32;
    engine.run_to_convergence(limit);

    let cap = ops.len().max(16);
    let mut pipeline = IngestPipeline::new(IngestConfig {
        queue_cap: cap,
        high_watermark: cap,
        policy: DrainPolicy::SizeTriggered(batch),
        ..Default::default()
    })?;

    // Serving model: after every flush the engine reconverges, so queries
    // between updates always see exact closeness. The baseline (batch 1)
    // therefore pays a full apply + reconverge cycle per update; batching
    // amortizes that cycle over the whole batch.
    let t0 = engine.makespan_us();
    for op in ops {
        pipeline.push(&engine, op.clone())?;
        if pipeline.maybe_flush(&mut engine)?.is_some() {
            engine.run_to_convergence(limit);
        }
    }
    if pipeline.flush(&mut engine)?.is_some() {
        engine.run_to_convergence(limit);
    }
    let cluster_seconds = (engine.makespan_us() - t0) / 1e6;

    let stats = pipeline.stats();
    Ok(IngestRow {
        batch,
        drop_rate,
        updates: ops.len(),
        cluster_seconds,
        updates_per_cluster_sec: ops.len() as f64 / cluster_seconds.max(1e-12),
        coalesce_ratio: stats.coalesce_ratio(),
        flushes: stats.flushes,
        shed: stats.shed,
    })
}

/// Runs the full sweep: every `batch_sizes` × `drop_rates` cell serves the
/// same `updates`-op churn schedule from a fresh converged engine.
pub fn ingest_throughput(
    params: &ExperimentParams,
    batch_sizes: &[usize],
    drop_rates: &[f64],
    updates: usize,
) -> Result<Vec<IngestRow>, String> {
    let base = ingest_base_graph(params);
    let ops = churn_ops(&base, updates, params.seed);
    let mut rows = Vec::new();
    for &drop in drop_rates {
        for &batch in batch_sizes {
            rows.push(serve(&base, params, &ops, batch, drop)?);
        }
    }
    Ok(rows)
}

/// Wall-clock cost of write-ahead durability on the ingest path.
///
/// Unlike [`IngestRow`] this is measured in **host** seconds: fsyncs happen
/// on the benchmark host, not inside the simulated cluster, so virtual
/// cluster time cannot see them. The same churn schedule is served twice at
/// the same batch size — once plain, once logging every enqueued op to a
/// real on-disk WAL with one group commit (one fsync) per flush and a final
/// checkpoint — and the ratio of wall times is the durability tax.
#[derive(Debug, Clone)]
pub struct DurableOverheadRow {
    /// Drain batch size (= ops amortized per group commit).
    pub batch: usize,
    /// Updates pushed through the pipeline.
    pub updates: usize,
    /// Host seconds for the plain run.
    pub plain_wall_s: f64,
    /// Host seconds for the durable run (WAL + final checkpoint).
    pub durable_wall_s: f64,
    /// `durable_wall_s / plain_wall_s`.
    pub overhead: f64,
    /// Group commits issued (one fsync each).
    pub commits: u64,
    /// Bytes on disk at the end (WAL segments + checkpoint).
    pub disk_bytes: u64,
}

/// One serving pass over `ops`; with `durable` set, every enqueued op is
/// WAL-logged and group-committed before the flush that applies it (the
/// serve layer's commit-before-apply ordering). Returns host wall seconds
/// and the number of commits issued.
fn churn_pass(
    base: &Graph,
    params: &ExperimentParams,
    ops: &[UpdateOp],
    batch: usize,
    mut durable: Option<(&mut aa_durable::DurableLog, &mut aa_durable::DiskStorage)>,
) -> Result<(f64, u64), String> {
    let config = EngineConfig {
        num_procs: params.procs,
        seed: params.seed,
        compute_scale: params.compute_scale,
        ..Default::default()
    };
    let mut engine = AnytimeEngine::new(base.clone(), config);
    engine.initialize();
    let limit = 4 * params.procs + 32;
    engine.run_to_convergence(limit);
    let cap = ops.len().max(16);
    let mut pipeline = IngestPipeline::new(IngestConfig {
        queue_cap: cap,
        high_watermark: cap,
        policy: DrainPolicy::SizeTriggered(batch),
        ..Default::default()
    })?;
    let mut commits = 0u64;
    let t0 = std::time::Instant::now();
    for op in ops {
        let outcome = pipeline.push(&engine, op.clone())?;
        if outcome.enqueued {
            if let Some((log, _)) = durable.as_mut() {
                log.append(op);
            }
        }
        if pipeline.pending_ops() >= batch {
            if let Some((log, storage)) = durable.as_mut() {
                log.commit(&mut **storage)
                    .map_err(|e| format!("wal commit: {e}"))?;
                commits += 1;
            }
            if pipeline.flush(&mut engine)?.is_some() {
                engine.run_to_convergence(limit);
            }
        }
    }
    if let Some((log, storage)) = durable.as_mut() {
        log.commit(&mut **storage)
            .map_err(|e| format!("wal commit: {e}"))?;
        commits += 1;
    }
    if pipeline.flush(&mut engine)?.is_some() {
        engine.run_to_convergence(limit);
    }
    if let Some((log, storage)) = durable.as_mut() {
        log.checkpoint(&mut **storage, &engine)
            .map_err(|e| format!("checkpoint: {e}"))?;
    }
    Ok((t0.elapsed().as_secs_f64(), commits))
}

/// Measures the durability tax at one batch size: plain vs WAL-logged runs
/// of the same churn schedule, the durable one against a real `DiskStorage`
/// in a scratch directory (removed afterwards).
pub fn durable_overhead(
    params: &ExperimentParams,
    batch: usize,
    updates: usize,
) -> Result<DurableOverheadRow, String> {
    let base = ingest_base_graph(params);
    let ops = churn_ops(&base, updates, params.seed);
    let (plain_wall_s, _) = churn_pass(&base, params, &ops, batch, None)?;
    let dir = std::env::temp_dir().join(format!(
        "aa-bench-wal-{}-{:x}",
        std::process::id(),
        params.seed
    ));
    std::fs::remove_dir_all(&dir).ok();
    let mut storage =
        aa_durable::DiskStorage::open(&dir).map_err(|e| format!("open {}: {e}", dir.display()))?;
    let mut log =
        aa_durable::DurableLog::open(&mut storage, 1, aa_durable::DurabilityConfig::default())
            .map_err(|e| format!("open wal: {e}"))?;
    let (durable_wall_s, commits) =
        churn_pass(&base, params, &ops, batch, Some((&mut log, &mut storage)))?;
    let disk_bytes = std::fs::read_dir(&dir)
        .map(|it| {
            it.flatten()
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0);
    std::fs::remove_dir_all(&dir).ok();
    Ok(DurableOverheadRow {
        batch,
        updates: ops.len(),
        plain_wall_s,
        durable_wall_s,
        overhead: durable_wall_s / plain_wall_s.max(1e-9),
        commits,
        disk_bytes,
    })
}

/// Serializes the durability-tax row as a JSON object.
pub fn overhead_to_json(r: &DurableOverheadRow) -> String {
    format!(
        "{{\"batch\": {}, \"updates\": {}, \"plain_wall_s\": {:.6}, \
         \"durable_wall_s\": {:.6}, \"overhead\": {:.4}, \"commits\": {}, \
         \"disk_bytes\": {}}}",
        r.batch, r.updates, r.plain_wall_s, r.durable_wall_s, r.overhead, r.commits, r.disk_bytes
    )
}

/// Serializes the sweep as a JSON array (the CI smoke artifact).
pub fn rows_to_json(rows: &[IngestRow]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"batch\": {}, \"drop_rate\": {}, \"updates\": {}, \
             \"cluster_seconds\": {:.6}, \"updates_per_cluster_sec\": {:.3}, \
             \"coalesce_ratio\": {:.4}, \"flushes\": {}, \"shed\": {}}}{}",
            r.batch,
            r.drop_rate,
            r.updates,
            r.cluster_seconds,
            r.updates_per_cluster_sec,
            r.coalesce_ratio,
            r.flushes,
            r.shed,
            if i + 1 < rows.len() { ",\n" } else { "\n" }
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> ExperimentParams {
        ExperimentParams {
            n: 192,
            procs: 4,
            ..Default::default()
        }
    }

    #[test]
    fn churn_schedule_is_deterministic_and_valid() {
        let params = tiny_params();
        let base = ingest_base_graph(&params);
        let a = churn_ops(&base, 64, 7);
        let b = churn_ops(&base, 64, 7);
        assert_eq!(a.len(), 64);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        // Replaying against a shadow copy must stay consistent.
        let mut shadow = base.clone();
        for op in &a {
            match *op {
                UpdateOp::AddEdge(u, v, w) => {
                    assert!(shadow.add_edge(u, v, w), "duplicate add {u}-{v}");
                }
                UpdateOp::DeleteEdge(u, v) => {
                    assert!(shadow.remove_edge(u, v).is_some(), "absent delete {u}-{v}");
                }
                UpdateOp::Reweight(u, v, w) => {
                    let old = shadow.set_edge_weight(u, v, w);
                    assert!(old.is_some() && old != Some(w), "no-op reweight {u}-{v}");
                }
                UpdateOp::AddVertex { ref anchors } => {
                    let id = shadow.add_vertex();
                    for &(a, w) in anchors {
                        shadow.add_edge(id, a, w);
                    }
                }
                UpdateOp::DeleteVertex(_) => unreachable!("bench schedule has no dv"),
            }
        }
    }

    #[test]
    fn batched_ingest_hits_5x_at_batch_64() {
        let params = tiny_params();
        // Long enough that per-update serving cost dominates the fixed
        // final-reconvergence cost in both runs.
        let rows = ingest_throughput(&params, &[1, 64], &[0.0], 256).unwrap();
        let base = &rows[0];
        let batched = &rows[1];
        assert_eq!(base.batch, 1);
        assert_eq!(batched.batch, 64);
        assert_eq!(base.flushes, base.updates as u64 - base.shed);
        assert!(batched.flushes < base.flushes / 8);
        assert_eq!(base.shed, 0);
        assert_eq!(batched.shed, 0);
        assert!(batched.coalesce_ratio >= 0.0);
        let speedup = batched.updates_per_cluster_sec / base.updates_per_cluster_sec;
        assert!(speedup > 1.0, "batched not faster: {speedup:.2}x");
        // The acceptance bar; measured compute noise in debug builds can
        // compress virtual-time ratios, so the hard threshold is
        // release-only (same convention as the figure tests).
        if !cfg!(debug_assertions) {
            assert!(speedup >= 5.0, "expected >= 5x, got {speedup:.2}x");
        }
    }

    #[test]
    fn durable_wal_overhead_within_budget() {
        let params = tiny_params();
        let row = durable_overhead(&params, 64, 96).unwrap();
        assert_eq!(row.batch, 64);
        assert!(row.commits >= 1, "at least one group commit");
        assert!(row.disk_bytes > 0, "WAL + checkpoint must hit disk");
        assert!(row.plain_wall_s > 0.0 && row.durable_wall_s > 0.0);
        let json = overhead_to_json(&row);
        assert!(json.contains("\"overhead\""));
        // The acceptance bar: durable batch-64 ingest within 2x of plain.
        // Wall-clock noise in debug builds can spike the ratio, so the hard
        // threshold is release-only (same convention as the speedup test).
        if !cfg!(debug_assertions) {
            assert!(
                row.overhead <= 2.0,
                "durability tax {:.2}x exceeds the 2x budget",
                row.overhead
            );
        }
    }

    #[test]
    fn lossy_links_slow_serving_but_do_not_shed() {
        let params = tiny_params();
        let rows = ingest_throughput(&params, &[64], &[0.0, 0.2], 48).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.shed == 0));
        assert!(rows.iter().all(|r| r.updates_per_cluster_sec > 0.0));
        let json = rows_to_json(&rows);
        assert!(json.contains("\"drop_rate\": 0.2"));
        assert!(json.starts_with('[') && json.ends_with(']'));
    }
}
